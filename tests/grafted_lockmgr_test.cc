// GraftedLockManager tests: downloaded grant/enqueue policies running
// sandboxed and transactional, with kernel-side safety re-checks.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "src/graft/namespace.h"
#include "src/lockmgr/grafted_lock_manager.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

class GraftedLockMgrTest : public ::testing::Test {
 protected:
  GraftedLockMgrTest() : mgr_("lockmgr.test", &txn_, &host_, &ns_) {}

  std::shared_ptr<Graft> Load(Asm& a) {
    Result<Program> inst = Instrument(*a.Finish());
    EXPECT_TRUE(inst.ok());
    return std::make_shared<Graft>("policy", *inst, kUser, 4096);
  }

  // The fair-queueing grant policy as a graft: deny whenever any waiter
  // exists, else apply holder-conflict logic.
  // Args: r0=holder r1=mode r2=holders r3=hcount r4=waiters r5=wcount.
  std::shared_ptr<Graft> FairGrantGraft() {
    Asm a("fair-grant");
    auto deny = a.NewLabel();
    auto scan = a.NewLabel();
    auto next = a.NewLabel();
    auto grant = a.NewLabel();
    // Any waiters? deny.
    a.LoadImm(R6, 0);
    a.Bne(R5, R6, deny);
    // Scan holders for a conflict: conflict iff either mode is exclusive.
    a.LoadImm(R7, 0);  // index
    a.Bind(scan);
    a.BgeU(R7, R3, grant);
    a.ShlI(R8, R7, 4);
    a.Add(R8, R2, R8);
    a.Ld64(R9, R8, 8);  // holder's mode
    a.LoadImm(R10, 1);
    a.Beq(R9, R10, deny);   // holder exclusive -> conflict
    a.Beq(R1, R10, deny);   // we are exclusive and a holder exists -> conflict
    a.Bind(next);
    a.AddI(R7, R7, 1);
    a.Jmp(scan);
    a.Bind(grant);
    a.LoadImm(R0, 1);
    a.Halt();
    a.Bind(deny);
    a.LoadImm(R0, 0);
    a.Halt();
    return Load(a);
  }

  // LIFO enqueue policy: always insert at index 0.
  std::shared_ptr<Graft> LifoEnqueueGraft() {
    Asm a("lifo-enqueue");
    a.LoadImm(R0, 0).Halt();
    return Load(a);
  }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  GraftedLockManager mgr_;
};

TEST_F(GraftedLockMgrTest, DefaultsMatchFigure4) {
  // Reader priority barging, FIFO queueing — same as SimpleLockManager.
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_EQ(mgr_.GetLock(1, 101, LockMode::kShared), Status::kOk);  // Barges.
  EXPECT_EQ(mgr_.WaiterCount(1), 1u);
  ASSERT_EQ(mgr_.ReleaseLock(1, 100), Status::kOk);
  ASSERT_EQ(mgr_.ReleaseLock(1, 101), Status::kOk);
  EXPECT_TRUE(mgr_.Holds(1, 200));  // Promoted.
}

TEST_F(GraftedLockMgrTest, PointsAppearInNamespace) {
  EXPECT_TRUE(ns_.LookupFunction("lockmgr.test.grant").ok());
  EXPECT_TRUE(ns_.LookupFunction("lockmgr.test.enqueue").ok());
}

TEST_F(GraftedLockMgrTest, FairGrantGraftPreventsBarging) {
  ASSERT_EQ(mgr_.grant_point().Replace(FairGrantGraft()), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // Under the grafted fair policy, a new reader queues behind the writer.
  EXPECT_EQ(mgr_.GetLock(1, 101, LockMode::kShared), Status::kBusy);
  EXPECT_EQ(mgr_.WaiterCount(1), 2u);
  // Every decision ran in a transaction.
  EXPECT_GE(txn_.stats().commits, 3u);
}

TEST_F(GraftedLockMgrTest, GraftCannotGrantConflictingRequests) {
  // A malicious grant policy that always says yes: the kernel's safety
  // re-check refuses conflicting grants regardless.
  Asm a("always-yes");
  a.LoadImm(R0, 1).Halt();
  ASSERT_EQ(mgr_.grant_point().Replace(Load(a)), Status::kOk);

  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_FALSE(mgr_.Holds(1, 200));
}

TEST_F(GraftedLockMgrTest, LifoEnqueueGraftReordersQueue) {
  ASSERT_EQ(mgr_.enqueue_point().Replace(LifoEnqueueGraft()), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr_.GetLock(1, 201, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr_.ReleaseLock(1, 100), Status::kOk);
  EXPECT_TRUE(mgr_.Holds(1, 201));  // LIFO: newest waiter won.
}

TEST_F(GraftedLockMgrTest, OutOfRangeEnqueueIndexClamped) {
  Asm a("huge-index");
  a.LoadImm(R0, 1'000'000).Halt();
  ASSERT_EQ(mgr_.enqueue_point().Replace(Load(a)), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_EQ(mgr_.WaiterCount(1), 1u);  // Clamped to append.
}

TEST_F(GraftedLockMgrTest, MisbehavingPolicyGraftFallsBackToDefault) {
  Asm a("spin");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  // Tight fuel comes from the point config; the default config's 10M fuel
  // still terminates, it just takes a moment — acceptable for one call.
  ASSERT_EQ(mgr_.grant_point().Replace(Load(a)), Status::kOk);

  // The decision still completes (default policy) and the graft is gone.
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_FALSE(mgr_.grant_point().grafted());
  EXPECT_GE(txn_.stats().aborts, 1u);
}

TEST_F(GraftedLockMgrTest, DenyOnIdleLockCannotStrandTheQueue) {
  // An always-deny grant graft queues every request. On an idle lock there
  // is no future release to promote the queue, so GetLock itself must run
  // kernel promotion — otherwise the request waits forever.
  Asm a("always-no");
  a.LoadImm(R0, 0).Halt();
  ASSERT_EQ(mgr_.grant_point().Replace(Load(a)), Status::kOk);
  EXPECT_EQ(mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_TRUE(mgr_.Holds(1, 100));
  EXPECT_EQ(mgr_.WaiterCount(1), 0u);
}

TEST_F(GraftedLockMgrTest, CancelWaitWithdrawsAndPromotes) {
  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr_.GetLock(1, 201, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr_.ReleaseLock(1, 100), Status::kOk);
  ASSERT_TRUE(mgr_.Holds(1, 200));
  // 200 times out and withdraws; 201 must be promoted, not stranded.
  ASSERT_EQ(mgr_.CancelWait(1, 200), Status::kOk);
  EXPECT_TRUE(mgr_.Holds(1, 201));
  EXPECT_EQ(mgr_.WaiterCount(1), 0u);
}

TEST_F(GraftedLockMgrTest, ConcurrentRequestsWithGrantGraftStayConsistent) {
  // The snapshot-consult path under real concurrency: every decision runs
  // the fair-grant graft (serialized on the consult mutex) while the shard
  // state keeps moving. Exclusive grants must never overlap, and the table
  // must drain completely.
  ASSERT_EQ(mgr_.grant_point().Replace(FairGrantGraft()), Status::kOk);
  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::array<std::atomic<int>, 4> exclusive_holders{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &exclusive_holders] {
      const LockHolderId holder = 1000 + static_cast<LockHolderId>(t);
      for (int i = 0; i < kIterations; ++i) {
        const LockResourceId resource = static_cast<LockResourceId>(i % 4);
        const Status got = mgr_.GetLock(resource, holder, LockMode::kExclusive);
        bool granted = got == Status::kOk;
        if (got == Status::kBusy) {
          for (int spin = 0; spin < 50 && !granted; ++spin) {
            granted = mgr_.Holds(resource, holder);
          }
          if (!granted) {
            ASSERT_EQ(mgr_.CancelWait(resource, holder), Status::kOk);
            continue;
          }
        }
        // Exclusive grants on one resource must never overlap.
        ASSERT_EQ(exclusive_holders[resource].fetch_add(1), 0);
        exclusive_holders[resource].fetch_sub(1);
        ASSERT_EQ(mgr_.ReleaseLock(resource, holder), Status::kOk);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (LockResourceId r = 0; r < 4; ++r) {
    EXPECT_EQ(mgr_.WaiterCount(r), 0u) << r;
  }
}

TEST_F(GraftedLockMgrTest, GraftSeesMarshalledState) {
  // A grant policy that denies iff there are >= 2 holders (count-based),
  // proving the holders list really reaches the graft.
  Asm a("max-two");
  auto deny = a.NewLabel();
  a.LoadImm(R6, 2);
  a.BgeU(R3, R6, deny);
  a.LoadImm(R0, 1);
  a.Halt();
  a.Bind(deny);
  a.LoadImm(R0, 0);
  a.Halt();
  ASSERT_EQ(mgr_.grant_point().Replace(Load(a)), Status::kOk);

  ASSERT_EQ(mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr_.GetLock(1, 101, LockMode::kShared), Status::kOk);
  EXPECT_EQ(mgr_.GetLock(1, 102, LockMode::kShared), Status::kBusy);  // 3rd denied.
}

}  // namespace
}  // namespace vino
