// VinoKernel facade tests: construction wiring, the source->graft pipeline,
// and cross-subsystem sanity through the single entry point.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "src/base/trace.h"
#include "src/base/trace_spool.h"
#include "src/kernel/kernel.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

TEST(KernelTest, DefaultConstructionWiresEverything) {
  VinoKernel kernel;
  EXPECT_NE(kernel.watchdog(), nullptr);
  EXPECT_EQ(kernel.mem().pool().frame_count(), 4096u);
  EXPECT_EQ(kernel.cache().capacity(), 1024u);
  // The net stack registered its host functions.
  EXPECT_TRUE(kernel.host().IdOf("net.recv").ok());
  EXPECT_TRUE(kernel.host().IdOf("net.send").ok());
  EXPECT_TRUE(kernel.host().IdOf("net.close").ok());
}

TEST(KernelTest, ConfigurationRespected) {
  VinoKernelConfig config;
  config.memory_frames = 64;
  config.cache_buffers = 16;
  config.start_watchdog = false;
  config.event_pool.workers = 3;
  config.event_pool.queue_capacity = 32;
  VinoKernel kernel(config);
  EXPECT_EQ(kernel.watchdog(), nullptr);
  EXPECT_EQ(kernel.mem().pool().frame_count(), 64u);
  EXPECT_EQ(kernel.cache().capacity(), 16u);
  EXPECT_EQ(kernel.event_pool().worker_count(), 3u);
  EXPECT_EQ(kernel.event_pool().queue_capacity(), 32u);
}

TEST(KernelTest, EventPoolCarriesNetTraffic) {
  VinoKernelConfig config;
  config.start_watchdog = false;
  config.event_pool.workers = 2;
  VinoKernel kernel(config);

  EventGraftPoint* point = kernel.net().ListenUdp(9);
  auto handler = std::make_shared<Graft>(
      "tick",
      [&kernel](std::span<const uint64_t> args, MemoryImage*) -> Result<uint64_t> {
        Connection* c = kernel.net().FindConnection(args[0]);
        if (c == nullptr) {
          return Status::kNotFound;
        }
        c->tx = "ok";
        return 0ull;
      },
      GraftIdentity{0, true});
  handler->account().SetLimit(ResourceType::kThreads, 2);
  ASSERT_EQ(point->AddHandler(handler, 1), Status::kOk);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kernel.net().DeliverPacketAsync(9, "x").ok());
  }
  kernel.net().DrainEvents();
  EXPECT_EQ(point->stats().handler_runs, 8u);
  // The kernel's own pool (not the process default) carried the traffic.
  EXPECT_GT(kernel.event_pool().stats().submitted, 0u);
}

TEST(KernelTest, SourcePipelineProducesRunnableGraft) {
  VinoKernel kernel;
  Result<std::shared_ptr<Graft>> graft = kernel.LoadGraftFromSource(
      "loadi r0, 1234\nhalt\n", "answer", kUser);
  ASSERT_TRUE(graft.ok());
  EXPECT_TRUE((*graft)->program().instrumented);

  FunctionGraftPoint point(
      "k.point", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      FunctionGraftPoint::Config{}, &kernel.txn(), &kernel.host(), &kernel.ns());
  ASSERT_EQ(kernel.loader().InstallFunction("k.point", *graft), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 1234u);
}

TEST(KernelTest, SourcePipelineErrors) {
  VinoKernel kernel;
  EXPECT_FALSE(kernel.LoadGraftFromSource("not an opcode\n", "bad", kUser).ok());
  EXPECT_FALSE(
      kernel.LoadGraftFromSource("call no.such.fn\nhalt\n", "bad2", kUser).ok());
}

TEST(KernelTest, SponsorPlumbsThroughPipeline) {
  VinoKernel kernel;
  ResourceAccount installer("installer");
  installer.SetLimit(ResourceType::kMemory, 100);
  Result<std::shared_ptr<Graft>> graft = kernel.LoadGraftFromSource(
      "loadi r0, 0\nhalt\n", "sponsored", kUser, &installer);
  ASSERT_TRUE(graft.ok());
  EXPECT_EQ((*graft)->account().Charge(ResourceType::kMemory, 40), Status::kOk);
  EXPECT_EQ(installer.usage(ResourceType::kMemory), 40u);
}

TEST(KernelTest, DefaultPointConfigWiresWatchdog) {
  VinoKernel kernel;
  FunctionGraftPoint::Config config = kernel.DefaultPointConfig(5'000);
  EXPECT_EQ(config.watchdog, kernel.watchdog());
  EXPECT_EQ(config.wall_budget, 5'000u);

  VinoKernelConfig no_dog;
  no_dog.start_watchdog = false;
  VinoKernel bare(no_dog);
  FunctionGraftPoint::Config config2 = bare.DefaultPointConfig();
  EXPECT_EQ(config2.watchdog, nullptr);
  EXPECT_EQ(config2.wall_budget, 0u);
}

TEST(KernelTest, GraftPointIntrospection) {
  VinoKernel kernel;
  Result<FileId> file = kernel.fs().CreateFile("f", 4096);
  ASSERT_TRUE(file.ok());
  Result<OpenFile*> open = kernel.fs().Open(*file);
  ASSERT_TRUE(open.ok());
  kernel.net().ListenTcp(80);
  kernel.sched().CreateThread("t", 1);
  VirtualAddressSpace* vas = kernel.mem().CreateVas("v", 8);
  (void)vas;

  const auto points = kernel.ListGraftPoints();
  // compute-ra + tcp event + schedule-delegate + vas eviction.
  EXPECT_GE(points.size(), 4u);
  bool saw_event = false;
  bool saw_function = false;
  for (const auto& p : points) {
    saw_event |= p.is_event;
    saw_function |= !p.is_event;
  }
  EXPECT_TRUE(saw_event);
  EXPECT_TRUE(saw_function);
}

TEST(KernelTest, ConfiguredSpoolDrainsTracesAcrossKernelLifetime) {
  const std::string path =
      ::testing::TempDir() + "vino_kernel_spool." + std::to_string(::getpid()) +
      ".bin";
  trace::ResetForTest();
  trace::SetEnabled(true);
  {
    VinoKernelConfig config;
    config.start_watchdog = false;
    config.trace_spool.path = path;
    VinoKernel kernel(config);
    ASSERT_NE(kernel.spool(), nullptr);
    EXPECT_EQ(kernel.spool()->path(), path);

    // Exercise a traced workload through the facade.
    Result<std::shared_ptr<Graft>> graft = kernel.LoadGraftFromSource(
        "loadi r0, 7\nhalt\n", "traced", kUser);
    ASSERT_TRUE(graft.ok());
    FunctionGraftPoint point(
        "k.spooled", [](std::span<const uint64_t>) -> uint64_t { return 0; },
        FunctionGraftPoint::Config{}, &kernel.txn(), &kernel.host(),
        &kernel.ns());
    ASSERT_EQ(kernel.loader().InstallFunction("k.spooled", *graft), Status::kOk);
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(point.Invoke({}), 7u);
    }
  }  // Kernel destruction: final drain + close trailer.
  trace::SetEnabled(false);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpool(path, records, &stats), Status::kOk);
  EXPECT_TRUE(stats.closed);
  // The 50 invocations (begin/end + txn begin/commit each) all made it out.
  uint64_t invoke_ends = 0;
  for (const auto& r : records) {
    if (static_cast<trace::Event>(r.record.event) == trace::Event::kInvokeEnd) {
      ++invoke_ends;
    }
  }
  EXPECT_GE(invoke_ends, 50u);
  std::remove(path.c_str());
  trace::ResetForTest();
}

TEST(KernelTest, ConfiguredRotationSpoolsSegmentRing) {
  const std::string base = ::testing::TempDir() + "vino_kernel_rspool." +
                           std::to_string(::getpid());
  trace::ResetForTest();
  trace::SetEnabled(true);
  {
    VinoKernelConfig config;
    config.start_watchdog = false;
    config.trace_spool.path = base;
    config.trace_spool.rotation.segment_bytes = 8 * 1024;  // Rotate often.
    config.trace_spool.rotation.max_segments = 1000;       // Reclaim nothing.
    VinoKernel kernel(config);
    ASSERT_NE(kernel.spool(), nullptr);

    Result<std::shared_ptr<Graft>> graft = kernel.LoadGraftFromSource(
        "loadi r0, 7\nhalt\n", "traced", kUser);
    ASSERT_TRUE(graft.ok());
    FunctionGraftPoint point(
        "k.rspooled", [](std::span<const uint64_t>) -> uint64_t { return 0; },
        FunctionGraftPoint::Config{}, &kernel.txn(), &kernel.host(),
        &kernel.ns());
    ASSERT_EQ(kernel.loader().InstallFunction("k.rspooled", *graft),
              Status::kOk);
    for (int i = 0; i < 400; ++i) {
      ASSERT_EQ(point.Invoke({}), 7u);
    }
  }
  trace::SetEnabled(false);

  // The workload spilled across multiple segments; the chain reads back as
  // one continuous, closed stream.
  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpoolChain(base, records, &stats), Status::kOk);
  EXPECT_TRUE(stats.closed);
  EXPECT_GT(stats.segments, 1u);
  EXPECT_EQ(stats.first_batch_seq, 0u);
  EXPECT_EQ(stats.seq_gaps, 0u);
  uint64_t invoke_ends = 0;
  for (const auto& r : records) {
    if (static_cast<trace::Event>(r.record.event) == trace::Event::kInvokeEnd) {
      ++invoke_ends;
    }
  }
  EXPECT_GE(invoke_ends, 400u);
  for (const uint64_t index : spool::ListSegments(base)) {
    std::remove(spool::SegmentPath(base, index).c_str());
  }
  trace::ResetForTest();
}

TEST(KernelTest, EjectPolicyConfigInstallsGlobalDriftPolicy) {
  DriftPolicy policy;
  policy.eject = true;
  policy.window_samples = 5;
  policy.strike_windows = 3;
  {
    VinoKernelConfig config;
    config.start_watchdog = false;
    config.eject_policy = policy;
    VinoKernel kernel(config);
    EXPECT_TRUE(GlobalDriftPolicy().eject);
    EXPECT_EQ(GlobalDriftPolicy().window_samples, 5u);
    EXPECT_EQ(GlobalDriftPolicy().strike_windows, 3u);
  }
  SetGlobalDriftPolicy(DriftPolicy{});  // Restore for later tests.
  EXPECT_FALSE(GlobalDriftPolicy().eject);
}

TEST(KernelTest, NoSpoolConfiguredMeansNoDrainer) {
  VinoKernelConfig config;
  config.start_watchdog = false;
  VinoKernel kernel(config);
  // (check.sh sets VINO_SPOOL for the whole suite run; only assert the
  // "off" shape when the environment agrees.)
  if (std::getenv("VINO_SPOOL") == nullptr) {
    EXPECT_EQ(kernel.spool(), nullptr);
  }
}

TEST(KernelTest, UnwritableSpoolPathDegradesToNoSpooling) {
  VinoKernelConfig config;
  config.start_watchdog = false;
  config.trace_spool.path = "/nonexistent-dir-vino/spool.bin";
  VinoKernel kernel(config);  // Must not throw or fail construction.
  EXPECT_EQ(kernel.spool(), nullptr);
  // The rest of the kernel is fully functional.
  EXPECT_TRUE(kernel.host().IdOf("net.recv").ok());
}

TEST(KernelTest, EndToEndFileWorkloadThroughFacade) {
  VinoKernel kernel;
  Result<FileId> file = kernel.fs().CreateFile("data", 32 * 4096);
  ASSERT_TRUE(file.ok());
  Result<OpenFile*> open = kernel.fs().Open(*file);
  ASSERT_TRUE(open.ok());

  Result<std::shared_ptr<Graft>> graft = kernel.LoadGraftFromSource(
      R"(
        ; prefetch block 3 on every read
        loadi r6, 12288
        st64 r4, r6
        loadi r6, 4096
        st64 r4, r6, 8
        loadi r0, 1
        halt
      )",
      "block3-ra", kUser);
  ASSERT_TRUE(graft.ok());
  ASSERT_EQ(kernel.loader().InstallFunction((*open)->readahead_point().name(),
                                            *graft),
            Status::kOk);
  ASSERT_TRUE((*open)->Read(0, 4096).ok());
  EXPECT_EQ((*open)->stats().prefetches_enqueued, 1u);
  kernel.clock().Advance(100'000);
  Result<OpenFile::ReadResult> hit = (*open)->Read(3 * 4096, 4096);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
}

}  // namespace
}  // namespace vino
