// Concurrency stress: many threads running transactions over a shared set
// of TxnLocks with random lock orders. The time-out mechanism must
// guarantee global forward progress (every thread finishes) and the
// accounting must balance — no lock leaked, no undo misapplied.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/resource/account.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_lock.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

TEST(StressTest, ManyThreadsRandomLockOrdersAlwaysTerminate) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  constexpr int kLocks = 3;

  TxnLock::Options options;
  options.contention_timeout = 2'000;
  options.poll_quantum = 200;
  std::array<std::unique_ptr<TxnLock>, kLocks> locks;
  for (int i = 0; i < kLocks; ++i) {
    locks[static_cast<size_t>(i)] =
        std::make_unique<TxnLock>("stress." + std::to_string(i), options);
  }

  // Shared state mutated under lock 0, with undo logging; committed
  // increments must all survive, aborted ones must all vanish.
  static std::atomic<uint64_t> committed_expected{0};
  static uint64_t shared_counter = 0;
  committed_expected = 0;
  shared_counter = 0;

  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&locks, t, &finished] {
      TxnManager manager;
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int round = 0; round < kRounds; ++round) {
        Transaction* txn = manager.Begin();
        bool doomed = false;

        // Acquire 1-3 locks in a random order (deadlock-prone by design).
        const int want = static_cast<int>(rng.Range(1, kLocks));
        size_t order[kLocks] = {0, 1, 2};
        std::swap(order[0], order[rng.Below(kLocks)]);
        std::swap(order[1], order[1 + rng.Below(kLocks - 1)]);
        bool holds_zero = false;
        for (int i = 0; i < want && !doomed; ++i) {
          const Status s = locks[order[static_cast<size_t>(i)]]->Acquire();
          if (!IsOk(s)) {
            doomed = true;
          } else if (order[static_cast<size_t>(i)] == 0) {
            holds_zero = true;
          }
        }

        if (!doomed && holds_zero) {
          TxnSet(&shared_counter, shared_counter + 1);
        }
        if (!doomed && rng.Chance(0.1)) {
          // Simulate a graft hoarding: wait for someone to time us out,
          // but give up quickly if nobody contends.
          for (int spin = 0; spin < 20 && !TxnManager::AbortPending(); ++spin) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }

        if (doomed || TxnManager::AbortPending()) {
          manager.Abort(txn, Status::kTxnTimedOut);
        } else {
          if (IsOk(manager.Commit(txn)) && holds_zero) {
            committed_expected.fetch_add(1);
          }
        }
      }
      finished.fetch_add(1);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Everyone terminated (reaching here proves no deadlock) and no lock is
  // still held.
  EXPECT_EQ(finished.load(), kThreads);
  for (const auto& lock : locks) {
    EXPECT_FALSE(lock->held()) << lock->name();
  }
  // Undo soundness under concurrency: the counter equals the number of
  // increments whose transaction committed.
  EXPECT_EQ(shared_counter, committed_expected.load());
}

TEST(StressTest, ConcurrentTransactionsIndependentPerThread) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  TxnManager manager;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager] {
      for (int i = 0; i < kPerThread; ++i) {
        Transaction* txn = manager.Begin();
        Transaction* nested = manager.Begin();
        if ((i & 1) != 0) {
          ASSERT_EQ(manager.Commit(nested), Status::kOk);
          ASSERT_EQ(manager.Commit(txn), Status::kOk);
        } else {
          manager.Abort(nested, Status::kTxnAborted);
          manager.Abort(txn, Status::kTxnAborted);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const TxnStats stats = manager.stats();
  EXPECT_EQ(stats.begins, static_cast<uint64_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(stats.commits + stats.aborts, stats.begins);
  EXPECT_EQ(stats.nested_begins, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(StressTest, SponsoredChargesRaceWithoutOvercommit) {
  ResourceAccount sponsor("sponsor");
  sponsor.SetLimit(ResourceType::kMemory, 10'000);
  std::array<std::unique_ptr<ResourceAccount>, 4> grafts;
  for (size_t i = 0; i < grafts.size(); ++i) {
    grafts[i] = std::make_unique<ResourceAccount>("g" + std::to_string(i));
    ASSERT_EQ(grafts[i]->BillTo(&sponsor), Status::kOk);
  }
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (auto& graft : grafts) {
    threads.emplace_back([&graft, &granted] {
      for (int i = 0; i < 5000; ++i) {
        if (IsOk(graft->Charge(ResourceType::kMemory, 1))) {
          granted.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(granted.load(), 10'000u);
  EXPECT_EQ(sponsor.usage(ResourceType::kMemory), 10'000u);
}

}  // namespace
}  // namespace vino
