// Stream graft tests (paper §4.4): transforming file data as it crosses
// the kernel boundary — encryption on write, decryption on read — plus
// abort behaviour (torn transforms degrade to identity, never garbage).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/fs/file_system.h"
#include "src/graft/namespace.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};
constexpr uint64_t kXorKey = 0x5a;

class StreamTest : public ::testing::Test {
 protected:
  StreamTest()
      : disk_(DiskParams{}, &clock_),
        cache_(64, 8, &disk_, &clock_),
        fs_(&disk_, &cache_, &txn_, &host_, &ns_) {
    file_ = *fs_.CreateFile("data", 64 * 4096);
    open_ = *fs_.Open(file_);
  }

  // The §4.4 xor stream graft in vISA: byte-wise xor from in to out.
  // Args: r0 = in, r1 = out, r2 = count, r3 = direction (xor is symmetric,
  // so direction is ignored — but it is there for asymmetric transforms).
  std::shared_ptr<Graft> XorGraft() {
    Asm a("xor-stream");
    auto loop = a.NewLabel();
    auto done = a.NewLabel();
    a.LoadImm(R4, 0);
    a.LoadImm(R5, kXorKey);
    a.Bind(loop);
    a.BgeU(R4, R2, done);
    a.Add(R6, R0, R4);
    a.Ld8(R7, R6);
    a.Xor(R7, R7, R5);
    a.Add(R6, R1, R4);
    a.St8(R6, R7);
    a.AddI(R4, R4, 1);
    a.Jmp(loop);
    a.Bind(done);
    a.LoadImm(R0, 0);
    a.Halt();
    Result<Program> inst = Instrument(*a.Finish());
    EXPECT_TRUE(inst.ok());
    return std::make_shared<Graft>("xor-stream", *inst, kUser, 4096);
  }

  ManualClock clock_;
  SimDisk disk_;
  BufferCache cache_;
  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  FlatFileSystem fs_;
  FileId file_ = 0;
  OpenFile* open_ = nullptr;
};

TEST_F(StreamTest, IdentityWithoutGraft) {
  std::vector<uint8_t> payload(100);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  ASSERT_TRUE(open_->WriteBytes(0, payload.size(), payload.data()).ok());

  std::vector<uint8_t> readback(payload.size());
  ASSERT_TRUE(open_->ReadBytes(0, readback.size(), readback.data()).ok());
  EXPECT_EQ(readback, payload);
}

TEST_F(StreamTest, UnwrittenBlocksReadAsZeros) {
  std::vector<uint8_t> readback(64, 0xff);
  ASSERT_TRUE(open_->ReadBytes(10 * 4096, readback.size(), readback.data()).ok());
  EXPECT_EQ(readback, std::vector<uint8_t>(64, 0));
}

TEST_F(StreamTest, XorGraftEncryptsOnWriteDecryptsOnRead) {
  ASSERT_EQ(open_->stream_point().Replace(XorGraft()), Status::kOk);

  const std::string secret = "attack at dawn";
  ASSERT_TRUE(open_->WriteBytes(0, secret.size(),
                                reinterpret_cast<const uint8_t*>(secret.data()))
                  .ok());

  // On-disk bytes are ciphertext (xor of the plaintext).
  Result<BlockId> block = fs_.BlockFor(file_, 0);
  ASSERT_TRUE(block.ok());
  const uint8_t* raw = fs_.BlockData(*block);
  ASSERT_NE(raw, nullptr);
  for (size_t i = 0; i < secret.size(); ++i) {
    EXPECT_EQ(raw[i], static_cast<uint8_t>(secret[i]) ^ kXorKey) << i;
  }

  // Reading back through the graft decrypts (xor is symmetric).
  std::vector<uint8_t> readback(secret.size());
  ASSERT_TRUE(open_->ReadBytes(0, readback.size(), readback.data()).ok());
  EXPECT_EQ(std::string(readback.begin(), readback.end()), secret);
}

TEST_F(StreamTest, MultiChunkTransforms) {
  // 20 KB crosses the 8 KB chunk boundary twice.
  ASSERT_EQ(open_->stream_point().Replace(XorGraft()), Status::kOk);
  std::vector<uint8_t> payload(20 * 1024);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(open_->WriteBytes(0, payload.size(), payload.data()).ok());
  std::vector<uint8_t> readback(payload.size());
  ASSERT_TRUE(open_->ReadBytes(0, readback.size(), readback.data()).ok());
  EXPECT_EQ(readback, payload);
}

TEST_F(StreamTest, MisalignedOffsets) {
  ASSERT_EQ(open_->stream_point().Replace(XorGraft()), Status::kOk);
  std::vector<uint8_t> payload(5000, 0x33);
  ASSERT_TRUE(open_->WriteBytes(2222, payload.size(), payload.data()).ok());
  std::vector<uint8_t> readback(payload.size());
  ASSERT_TRUE(open_->ReadBytes(2222, readback.size(), readback.data()).ok());
  EXPECT_EQ(readback, payload);
}

TEST_F(StreamTest, AbortingStreamGraftDegradesToIdentityNotGarbage) {
  // Write plaintext with no graft; install a graft that transforms half the
  // chunk then hangs. The read must deliver the *untransformed* data (the
  // pre-filled output), never a torn half-transformed chunk.
  const std::string data(1000, 'x');
  ASSERT_TRUE(open_->WriteBytes(0, data.size(),
                                reinterpret_cast<const uint8_t*>(data.data()))
                  .ok());

  Asm a("torn");
  auto loop = a.NewLabel();
  auto spin = a.NewLabel();
  a.LoadImm(R4, 0);
  a.LoadImm(R5, 500);  // Transform only the first half...
  a.LoadImm(R8, kXorKey);
  a.Bind(loop);
  a.BgeU(R4, R5, spin);
  a.Add(R6, R0, R4);
  a.Ld8(R7, R6);
  a.Xor(R7, R7, R8);
  a.Add(R6, R1, R4);
  a.St8(R6, R7);
  a.AddI(R4, R4, 1);
  a.Jmp(loop);
  a.Bind(spin);
  a.Jmp(spin);  // ...then hang.
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  auto torn = std::make_shared<Graft>("torn", *inst, kUser, 4096);
  ASSERT_EQ(open_->stream_point().Replace(torn), Status::kOk);

  std::vector<uint8_t> readback(data.size());
  ASSERT_TRUE(open_->ReadBytes(0, readback.size(), readback.data()).ok());
  // Fuel exhaustion aborted the graft; identity delivered.
  EXPECT_EQ(std::string(readback.begin(), readback.end()), data);
  EXPECT_FALSE(open_->stream_point().grafted());
  EXPECT_GE(txn_.stats().aborts, 1u);
}

TEST_F(StreamTest, StreamPointInNamespaceAndClosedWithFile) {
  const std::string name = open_->stream_point().name();
  EXPECT_TRUE(ns_.LookupFunction(name).ok());
  ASSERT_EQ(fs_.Close(open_), Status::kOk);
  EXPECT_FALSE(ns_.LookupFunction(name).ok());
  open_ = nullptr;
}

TEST_F(StreamTest, WriteBoundsChecked) {
  uint8_t byte = 0;
  EXPECT_FALSE(open_->WriteBytes(64 * 4096, 1, &byte).ok());  // At EOF.
  EXPECT_FALSE(open_->WriteBytes(0, 0, &byte).ok());          // Empty.
  // Clamped write near EOF.
  std::vector<uint8_t> tail(8192, 1);
  Result<OpenFile::ReadResult> w =
      open_->WriteBytes(64 * 4096 - 100, tail.size(), tail.data());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->bytes_read, 100u);
}

}  // namespace
}  // namespace vino
