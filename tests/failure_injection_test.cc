// Failure injection: abort a graft at *every possible point* in its
// execution and prove the kernel's state is bit-for-bit untouched.
//
// The graft performs a chain of undo-logged kernel mutations and resource
// charges. We sweep the fuel limit from 1 instruction to "enough to
// finish": every prefix of the graft's execution gets cut off exactly once,
// at every instruction boundary, and every cut must roll back cleanly.

#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "src/graft/function_point.h"
#include "src/graft/namespace.h"
#include "src/resource/account.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_lock.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

class FailureInjectionTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  FailureInjectionTest() : lock_("fi.lock") {
    set_id_ = host_.Register(
        "fi.set",
        [this](HostCallContext& ctx) -> Result<uint64_t> {
          TxnSet(&cells_[ctx.args[0] % cells_.size()], ctx.args[1]);
          return 0ull;
        },
        true);
    alloc_id_ = host_.Register(
        "fi.alloc",
        [](HostCallContext& ctx) -> Result<uint64_t> {
          const Status s = ChargeCurrent(ResourceType::kMemory, ctx.args[0]);
          if (!IsOk(s)) {
            return s;
          }
          return 0ull;
        },
        true);
    lock_id_ = host_.Register(
        "fi.lock",
        [this](HostCallContext&) -> Result<uint64_t> {
          const Status s = lock_.Acquire();
          if (!IsOk(s)) {
            return s;
          }
          return 0ull;
        },
        true);
  }

  // The test graft: lock, mutate 4 cells, charge memory, mutate 4 more.
  std::shared_ptr<Graft> MutatorGraft() {
    Asm a("mutator");
    a.Call(lock_id_);
    for (int64_t i = 0; i < 4; ++i) {
      a.LoadImm(R0, i);
      a.LoadImm(R1, 100 + i);
      a.Call(set_id_);
    }
    a.LoadImm(R0, 64);
    a.Call(alloc_id_);
    for (int64_t i = 4; i < 8; ++i) {
      a.LoadImm(R0, i);
      a.LoadImm(R1, 100 + i);
      a.Call(set_id_);
    }
    a.LoadImm(R0, 1);
    a.Halt();
    Result<Program> inst = Instrument(*a.Finish());
    EXPECT_TRUE(inst.ok());
    auto graft = std::make_shared<Graft>("mutator", *inst, kUser, 4096);
    graft->account().SetLimit(ResourceType::kMemory, 1024);
    return graft;
  }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  TxnLock lock_;
  std::array<uint64_t, 8> cells_{};
  uint32_t set_id_ = 0;
  uint32_t alloc_id_ = 0;
  uint32_t lock_id_ = 0;
};

TEST_P(FailureInjectionTest, AbortAtEveryInstructionBoundaryRollsBackFully) {
  auto graft = MutatorGraft();
  const uint64_t fuel = GetParam();

  FunctionGraftPoint::Config config;
  config.fuel = fuel;
  config.poll_interval = 1'000'000;  // Fuel is the only cutter.
  FunctionGraftPoint point(
      "fi.point." + std::to_string(fuel),
      [](std::span<const uint64_t>) -> uint64_t { return 7; }, config, &txn_,
      &host_, &ns_);

  // Snapshot and run.
  const std::array<uint64_t, 8> before = cells_;
  ASSERT_EQ(point.Replace(graft), Status::kOk);
  const uint64_t result = point.Invoke({});

  if (point.stats().graft_aborts == 1) {
    // Cut mid-flight: everything rolled back.
    EXPECT_EQ(result, 7u) << "fuel=" << fuel;
    EXPECT_EQ(cells_, before) << "fuel=" << fuel;
    EXPECT_EQ(graft->account().usage(ResourceType::kMemory), 0u)
        << "fuel=" << fuel;
    EXPECT_FALSE(point.grafted());
  } else {
    // Enough fuel to finish: all mutations landed, charge kept.
    EXPECT_EQ(result, 1u) << "fuel=" << fuel;
    for (size_t i = 0; i < cells_.size(); ++i) {
      EXPECT_EQ(cells_[i], 100 + i) << "fuel=" << fuel;
    }
    EXPECT_EQ(graft->account().usage(ResourceType::kMemory), 64u);
  }
  // Either way the lock is free afterwards (released by commit or abort).
  EXPECT_FALSE(lock_.held()) << "fuel=" << fuel;
}

// Sweep a dense range of cut points (the full program is ~32 instructions)
// plus a generous value that always completes.
INSTANTIATE_TEST_SUITE_P(FuelSweep, FailureInjectionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19, 20,
                                           21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32, 33, 34, 35, 40, 1000));

TEST(FailureInjectionEdge, HostErrorMidChainRollsBackEarlierMutations) {
  // The alloc call fails (zero limits) after mutations already happened.
  TxnManager txn;
  HostCallTable host;
  static std::array<uint64_t, 4> cells{};
  cells = {};
  const uint32_t set_id = host.Register(
      "e.set",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        TxnSet(&cells[ctx.args[0] % cells.size()], ctx.args[1]);
        return 0ull;
      },
      true);
  const uint32_t alloc_id = host.Register(
      "e.alloc",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        const Status s = ChargeCurrent(ResourceType::kMemory, ctx.args[0]);
        if (!IsOk(s)) {
          return s;
        }
        return 0ull;
      },
      true);

  Asm a("failer");
  a.LoadImm(R0, 0).LoadImm(R1, 5).Call(set_id);
  a.LoadImm(R0, 1).LoadImm(R1, 6).Call(set_id);
  a.LoadImm(R0, 9999).Call(alloc_id);  // Exceeds the zero limit.
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  auto graft = std::make_shared<Graft>("failer", *inst, kUser, 4096);

  FunctionGraftPoint point(
      "e.point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn, &host, nullptr);
  ASSERT_EQ(point.Replace(graft), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_EQ(cells[0], 0u);  // Both earlier mutations undone.
  EXPECT_EQ(cells[1], 0u);
}

}  // namespace
}  // namespace vino
