// The survive-and-eject harness has to prove two things about itself:
//
//  1. It stays green on a clean kernel: a full campaign across all three
//     program classes ends with zero anomalies, non-vacuously (each class
//     was exercised, both tiers compared, the spool replayed).
//  2. It catches real regressions and names the guilty subsystem: the two
//     deliberately re-introduced seed bugs — the PR-9 lockmgr ghost waiter
//     and the PR-6 verifier mask-write hole — must each surface as exactly
//     one anomaly, triaged to lockmgr and verifier respectively, with a
//     complete reproducer bundle on disk.
//
// Plus direct unit coverage of the Triage() attribution rules on synthetic
// spool replays.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/base/trace.h"
#include "src/fuzz/fuzz_harness.h"

namespace vino {
namespace {

fuzz::FuzzOptions BaseOptions(const std::string& tag, uint64_t seed,
                              int programs) {
  fuzz::FuzzOptions options;
  options.seed = seed;
  options.programs = programs;
  const std::filesystem::path tmp = ::testing::TempDir();
  options.spool_path = (tmp / ("fuzz-harness-" + tag + "-spool.bin")).string();
  options.artifacts_dir = (tmp / ("fuzz-harness-" + tag + "-art")).string();
  return options;
}

TEST(FuzzHarnessTest, CleanKernelSurvivesACampaign) {
  const fuzz::FuzzReport report = fuzz::RunFuzz(BaseOptions("clean", 1, 80));
  for (const fuzz::Anomaly& a : report.anomalies) {
    ADD_FAILURE() << fuzz::AnomalyKindName(a.kind) << " -> "
                  << fuzz::SubsystemName(a.subsystem) << ": " << a.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.programs, 80);
  // Not vacuous: every class drew, abort/eject fired, tiers were compared,
  // events flowed, and the spool replayed records.
  EXPECT_GT(report.valid_accepted, 0);
  EXPECT_GT(report.valid_aborted, 0);
  EXPECT_GT(report.forged_rejected, 0);
  EXPECT_GT(report.soup_rejected, 0);
  EXPECT_GT(report.tier1_checked, 0);
  EXPECT_GT(report.invocations, 0u);
  EXPECT_GT(report.events_dispatched, 0u);
  EXPECT_GT(report.spool_records, 0u);
}

TEST(FuzzHarnessTest, GhostWaiterInjectionIsCaughtAndTriagedToLockMgr) {
  // Re-introduce the PR-9 seed bug: a timed-out waiter that never calls
  // CancelWait, stranding a ghost entry the release path later promotes.
  fuzz::FuzzOptions options = BaseOptions("ghost", 7, 60);
  options.inject.lockmgr_ghost_waiter = true;
  const fuzz::FuzzReport report = fuzz::RunFuzz(options);

  ASSERT_EQ(report.anomalies.size(), 1u)
      << "the injection must produce exactly one anomaly";
  const fuzz::Anomaly& a = report.anomalies[0];
  EXPECT_EQ(a.kind, fuzz::AnomalyKind::kLockNotDrained);
  EXPECT_EQ(a.subsystem, fuzz::Subsystem::kLockMgr);
  EXPECT_EQ(a.seed, 7u);

  // The reproducer bundle is on disk with the repro recipe and the replayed
  // spool tail the triage read.
  ASSERT_FALSE(a.bundle_dir.empty());
  const std::filesystem::path bundle(a.bundle_dir);
  EXPECT_TRUE(std::filesystem::exists(bundle / "repro.txt"));
  EXPECT_TRUE(std::filesystem::exists(bundle / "spool_tail.txt"));
}

TEST(FuzzHarnessTest, MaskWriteHoleInjectionIsCaughtAndTriagedToVerifier) {
  // Re-introduce the PR-6 seed bug: a forged program that rewrites the
  // sandbox mask register, installed with a claimed proof so the fast path
  // runs it with every bounds check deleted.
  fuzz::FuzzOptions options = BaseOptions("mask", 7, 60);
  options.inject.verifier_mask_write_hole = true;
  const fuzz::FuzzReport report = fuzz::RunFuzz(options);

  ASSERT_EQ(report.anomalies.size(), 1u)
      << "the injection must produce exactly one anomaly";
  const fuzz::Anomaly& a = report.anomalies[0];
  EXPECT_EQ(a.kind, fuzz::AnomalyKind::kKernelCorruption);
  EXPECT_EQ(a.subsystem, fuzz::Subsystem::kVerifier);
  EXPECT_EQ(a.seed, 7u);

  // The bundle carries the offending program itself: container bytes plus
  // a graftdump-style disassembly.
  ASSERT_FALSE(a.bundle_dir.empty());
  const std::filesystem::path bundle(a.bundle_dir);
  EXPECT_TRUE(std::filesystem::exists(bundle / "repro.txt"));
  EXPECT_TRUE(std::filesystem::exists(bundle / "program.graft"));
  bool has_disasm = false;
  for (const auto& entry : std::filesystem::directory_iterator(bundle)) {
    has_disasm |= entry.path().extension() == ".vasm";
  }
  EXPECT_TRUE(has_disasm) << "no .vasm disassembly in " << a.bundle_dir;
}

// ---------------------------------------------------------------------------
// Triage() attribution rules on synthetic spool replays.

trace::TaggedRecord Rec(trace::Event event, uint64_t a) {
  trace::TaggedRecord out{};
  out.record.event = static_cast<uint16_t>(event);
  out.record.a = a;
  return out;
}

TEST(TriageTest, CorruptionAndValidRejectionPointAtTheVerifier) {
  fuzz::TriageInput input;
  input.kind = fuzz::AnomalyKind::kKernelCorruption;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kVerifier);
  input.kind = fuzz::AnomalyKind::kValidRejected;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kVerifier);
}

TEST(TriageTest, LockLeakNeedsAMatchingLockRecordInTheReplay) {
  fuzz::TriageInput input;
  input.kind = fuzz::AnomalyKind::kLockNotDrained;
  input.lock_resource = 0x1234;
  // No trace of the resource: unattributable.
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kUnknown);
  EXPECT_EQ(fuzz::Triage(input, {Rec(trace::Event::kLockAcquire, 0x9999)}),
            fuzz::Subsystem::kUnknown);
  // Either lock event for the leaked id pins the lock manager.
  EXPECT_EQ(fuzz::Triage(input, {Rec(trace::Event::kLockAcquire, 0x1234)}),
            fuzz::Subsystem::kLockMgr);
  EXPECT_EQ(fuzz::Triage(input, {Rec(trace::Event::kLockContend, 0x1234)}),
            fuzz::Subsystem::kLockMgr);
}

TEST(TriageTest, MissedEjectionSplitsOnTierAgreementAndEjectRecords) {
  fuzz::TriageInput input;
  input.kind = fuzz::AnomalyKind::kMissedEjection;
  input.graft_trace_id = 0x42;

  // Tiers disagreed on the same program: the backend is the culprit.
  input.ran_tier1 = true;
  input.tier0_agrees = false;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kTierBackend);

  // Tiers agree and no kGraftEjected record: the eject never posted.
  input.tier0_agrees = true;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kTxn);

  // An eject record for this graft disproves "missed" — inconclusive.
  EXPECT_EQ(fuzz::Triage(input, {Rec(trace::Event::kGraftEjected, 0x42)}),
            fuzz::Subsystem::kUnknown);
  // ...but an eject record for a *different* graft proves nothing.
  EXPECT_EQ(fuzz::Triage(input, {Rec(trace::Event::kGraftEjected, 0x43)}),
            fuzz::Subsystem::kTxn);
}

TEST(TriageTest, RemainingKindsMapDirectly) {
  fuzz::TriageInput input;
  input.kind = fuzz::AnomalyKind::kTierDivergence;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kTierBackend);
  input.kind = fuzz::AnomalyKind::kTxnImbalance;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kTxn);
  input.kind = fuzz::AnomalyKind::kLostEvents;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kTxn);
  input.kind = fuzz::AnomalyKind::kSpoolLoss;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kSpool);
  input.kind = fuzz::AnomalyKind::kServingFailure;
  EXPECT_EQ(fuzz::Triage(input, {}), fuzz::Subsystem::kUnknown);
}

}  // namespace
}  // namespace vino
