// Code-signing tests: the loader's trust decision (Rule 6).

#include <gtest/gtest.h>

#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/sfi/signing.h"

namespace vino {
namespace {

Program MakeProgram() {
  Asm a("signed-prog");
  a.LoadImm(R0, 7).Halt();
  Result<Program> p = a.Finish();
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(SigningTest, SignAndVerify) {
  SigningAuthority authority("misfit-key");
  Result<Program> inst = Instrument(MakeProgram());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> signed_graft = authority.Sign(*inst);
  ASSERT_TRUE(signed_graft.ok());
  EXPECT_TRUE(authority.Verify(*signed_graft));
}

TEST(SigningTest, RefusesUninstrumentedPrograms) {
  SigningAuthority authority("misfit-key");
  EXPECT_EQ(authority.Sign(MakeProgram()).status(), Status::kNotInstrumented);
}

TEST(SigningTest, TamperedCodeFailsVerification) {
  SigningAuthority authority("misfit-key");
  Result<Program> inst = Instrument(MakeProgram());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> signed_graft = authority.Sign(*inst);
  ASSERT_TRUE(signed_graft.ok());

  SignedGraft tampered = *signed_graft;
  tampered.program.code[0].imm = 666;  // Patch the code post-signing.
  EXPECT_FALSE(authority.Verify(tampered));
}

TEST(SigningTest, TamperedMetadataFailsVerification) {
  SigningAuthority authority("misfit-key");
  Result<Program> inst = Instrument(MakeProgram(), MisfitOptions{16});
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> signed_graft = authority.Sign(*inst);
  ASSERT_TRUE(signed_graft.ok());

  // Claiming a bigger sandbox than instrumented-for must not verify.
  SignedGraft tampered = *signed_graft;
  tampered.program.sandbox_log2 = 30;
  EXPECT_FALSE(authority.Verify(tampered));

  // Injecting an extra "approved" direct-call id must not verify either.
  SignedGraft tampered2 = *signed_graft;
  tampered2.program.direct_call_ids.push_back(1);
  EXPECT_FALSE(authority.Verify(tampered2));
}

TEST(SigningTest, WrongKeyFailsVerification) {
  SigningAuthority signer("key-A");
  SigningAuthority verifier("key-B");
  Result<Program> inst = Instrument(MakeProgram());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> signed_graft = signer.Sign(*inst);
  ASSERT_TRUE(signed_graft.ok());
  EXPECT_FALSE(verifier.Verify(*signed_graft));
}

TEST(SigningTest, ForgedInstrumentedFlagFailsVerification) {
  // An attacker flips instrumented=true on raw code and reuses an old
  // signature: the digest covers the flag and the code, so it cannot pass.
  SigningAuthority authority("misfit-key");
  Result<Program> inst = Instrument(MakeProgram());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> good = authority.Sign(*inst);
  ASSERT_TRUE(good.ok());

  SignedGraft forged;
  forged.program = MakeProgram();
  forged.program.instrumented = true;  // Lie.
  forged.signature = good->signature;  // Stolen signature.
  EXPECT_FALSE(authority.Verify(forged));
}

// --- Container serialization (graftc/graftdump format) -----------------

TEST(SignedGraftContainerTest, RoundTrip) {
  SigningAuthority authority("misfit-key");
  Result<Program> inst = Instrument(MakeProgram());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> signed_graft = authority.Sign(*inst);
  ASSERT_TRUE(signed_graft.ok());

  const std::vector<uint8_t> bytes = SerializeSignedGraft(*signed_graft);
  Result<SignedGraft> restored = DeserializeSignedGraft(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->signature, signed_graft->signature);
  EXPECT_EQ(restored->program.code, signed_graft->program.code);
  EXPECT_EQ(restored->program.name, signed_graft->program.name);
  EXPECT_TRUE(authority.Verify(*restored));
}

TEST(SignedGraftContainerTest, BadMagicRejected) {
  std::vector<uint8_t> bytes(64, 0);
  EXPECT_FALSE(DeserializeSignedGraft(bytes).ok());
}

TEST(SignedGraftContainerTest, TruncatedRejected) {
  SigningAuthority authority("misfit-key");
  Result<SignedGraft> sg = authority.Sign(*Instrument(MakeProgram()));
  ASSERT_TRUE(sg.ok());
  std::vector<uint8_t> bytes = SerializeSignedGraft(*sg);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeSignedGraft(bytes).ok());
  bytes.resize(10);  // Shorter than the header.
  EXPECT_FALSE(DeserializeSignedGraft(bytes).ok());
}

TEST(SignedGraftContainerTest, BitFlipInContainerFailsVerification) {
  // A flipped bit anywhere — signature or code — must not verify.
  SigningAuthority authority("misfit-key");
  Result<SignedGraft> sg = authority.Sign(*Instrument(MakeProgram()));
  ASSERT_TRUE(sg.ok());
  const std::vector<uint8_t> clean = SerializeSignedGraft(*sg);
  int rejected = 0;
  int parse_failures = 0;
  for (size_t bit = 0; bit < clean.size() * 8; bit += 37) {  // Sampled bits.
    std::vector<uint8_t> dirty = clean;
    dirty[bit / 8] = static_cast<uint8_t>(dirty[bit / 8] ^ (1u << (bit % 8)));
    Result<SignedGraft> restored = DeserializeSignedGraft(dirty);
    if (!restored.ok()) {
      ++parse_failures;  // Header/structure damage.
      continue;
    }
    if (!authority.Verify(*restored)) {
      ++rejected;
    }
  }
  // Every flip either failed to parse or failed to verify.
  EXPECT_EQ(rejected + parse_failures,
            static_cast<int>((clean.size() * 8 + 36) / 37));
}

}  // namespace
}  // namespace vino
