// Replays the checked-in adversarial corpus (tests/corpus/loader_reject/)
// through the exact deserialize -> GraftLoader::Load pipeline and asserts
// every fixture earns the Status recorded in its file. This pins each
// loader rejection path — decode bombs, truncation, bit flips, wrong keys,
// forged manifests, mask writes, unsandboxed accesses — byte-for-byte
// against regression.
//
// The corpus is generated (and self-checked against the live pipeline) by
// `graftfuzz --emit-corpus tests/corpus/loader_reject`; the count test
// fails if the checked-in set drifts from the builder.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fuzz/corpus.h"
#include "src/graft/loader.h"
#include "src/graft/namespace.h"
#include "src/sfi/host.h"
#include "src/sfi/signing.h"

namespace vino {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(VINO_CORPUS_DIR)) {
    if (entry.path().extension() == ".corpus") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(LoaderCorpusTest, BuilderSelfCheckPasses) {
  // BuildCorpus re-checks every fixture's expectation against the live
  // pipeline as it constructs them; a non-empty error means an expectation
  // went stale.
  std::string error;
  const std::vector<fuzz::CorpusFixture> fixtures = fuzz::BuildCorpus(&error);
  EXPECT_EQ(error, "");
  EXPECT_GE(fixtures.size(), 50u);
}

TEST(LoaderCorpusTest, CheckedInFixturesEarnTheirRecordedStatus) {
  HostCallTable host;
  uint32_t ok_id = 0;
  uint32_t internal_id = 0;
  fuzz::RegisterCorpusHost(host, &ok_id, &internal_id);
  GraftNamespace ns;
  GraftLoader loader(&ns, &host, SigningAuthority(fuzz::CorpusSigningKey()));

  const std::vector<std::string> paths = CorpusFiles();
  ASSERT_GE(paths.size(), 50u)
      << "corpus directory " << VINO_CORPUS_DIR << " looks truncated";

  for (const std::string& path : paths) {
    Result<fuzz::CorpusFixture> fixture = fuzz::ParseCorpusFile(path);
    ASSERT_TRUE(fixture.ok()) << "unparseable fixture: " << path;
    const Status got = fuzz::ReplayFixture(fixture->bytes, loader);
    EXPECT_EQ(got, fixture->expect)
        << fixture->name << " (" << path << "): the pipeline says "
        << StatusName(got) << " but the fixture pins "
        << StatusName(fixture->expect);
  }
}

TEST(LoaderCorpusTest, CheckedInSetMatchesTheBuilder) {
  std::string error;
  const std::vector<fuzz::CorpusFixture> fixtures = fuzz::BuildCorpus(&error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(CorpusFiles().size(), fixtures.size())
      << "checked-in corpus drifted; regenerate with "
         "`graftfuzz --emit-corpus tests/corpus/loader_reject`";
}

}  // namespace
}  // namespace vino
