// Edge cases and hostile inputs across modules: memory-image boundaries,
// interpreter corner cases, multi-block file reads, concurrent event
// dispatch, cross-thread watchdog arming.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/context.h"
#include "src/fs/file_system.h"
#include "src/graft/event_point.h"
#include "src/graft/namespace.h"
#include "src/sfi/assembler.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/misfit.h"
#include "src/sfi/vm.h"
#include "src/txn/watchdog.h"

namespace vino {
namespace {

constexpr GraftIdentity kRoot{0, true};

// --- MemoryImage boundaries ---------------------------------------------

TEST(MemoryImageTest, ArenaAlignedToItsSize) {
  for (uint32_t log2 : {4u, 12u, 16u, 20u}) {
    MemoryImage image(5000, log2);
    EXPECT_EQ(image.arena_base() % image.arena_size(), 0u) << log2;
    EXPECT_GE(image.arena_base(), image.kernel_size());
    EXPECT_EQ(image.arena_size(), uint64_t{1} << log2);
  }
}

TEST(MemoryImageTest, ArenaNeverAtAddressZero) {
  MemoryImage image(0, 16);  // Even with an empty kernel region.
  EXPECT_GT(image.arena_base(), 0u);
}

TEST(MemoryImageTest, GuardBytesAbsorbWideAccessAtArenaEnd) {
  MemoryImage image(4096, 12);
  const uint64_t last_byte = image.arena_base() + image.arena_size() - 1;
  // An 8-byte access at the final arena byte stays in bounds (guard).
  EXPECT_TRUE(image.InBounds(last_byte, 8));
  // But it is not "in arena" (host-call destination checks still refuse).
  EXPECT_FALSE(image.InArena(last_byte, 8));
  EXPECT_TRUE(image.InArena(last_byte, 1));
}

TEST(MemoryImageTest, CheckedAccessorsRejectOutOfBounds) {
  MemoryImage image(4096, 12);
  uint8_t buf[16] = {};
  EXPECT_EQ(image.Read(image.total_size(), buf, 1), Status::kOutOfRange);
  EXPECT_EQ(image.Write(image.total_size() - 4, buf, 8), Status::kOutOfRange);
  EXPECT_EQ(image.Read(~0ull, buf, 1), Status::kOutOfRange);
  // Overflow-probing length.
  EXPECT_EQ(image.Read(8, buf, ~0ull), Status::kOutOfRange);
}

TEST(MemoryImageTest, InArenaRejectsOverflowingRanges) {
  MemoryImage image(4096, 12);
  EXPECT_FALSE(image.InArena(image.arena_base(), image.arena_size() + 1));
  EXPECT_FALSE(image.InArena(~0ull, 1));
  EXPECT_TRUE(image.InArena(image.arena_base(), image.arena_size()));
}

// --- Interpreter corner cases ---------------------------------------------

class VmEdgeTest : public ::testing::Test {
 protected:
  VmEdgeTest() : image_(4096, 16), vm_(&image_, &host_) {}
  HostCallTable host_;
  MemoryImage image_;
  Vm vm_;
};

TEST_F(VmEdgeTest, EmptyProgramRejected) {
  Program p;
  EXPECT_EQ(vm_.Run(p, {}, RunOptions{}).status, Status::kBadGraft);
}

TEST_F(VmEdgeTest, FallingOffTheEndTrapsNotCrashes) {
  // Hand-built program that skips verification: branch past the last
  // instruction.
  Program p;
  p.name = "fall";
  p.code.push_back(Instruction{Op::kNop, 0, 0, 0, 0});
  EXPECT_EQ(vm_.Run(p, {}, RunOptions{}).status, Status::kBadGraft);
}

TEST_F(VmEdgeTest, DivisionByZeroYieldsZero) {
  Asm a("div0");
  a.LoadImm(R1, 42).LoadImm(R2, 0).DivU(R0, R1, R2).Halt();
  EXPECT_EQ(vm_.Run(*a.Finish(), {}, RunOptions{}).ret, 0u);
  Asm b("rem0");
  b.LoadImm(R1, 42).LoadImm(R2, 0).RemU(R0, R1, R2).Halt();
  EXPECT_EQ(vm_.Run(*b.Finish(), {}, RunOptions{}).ret, 0u);
}

TEST_F(VmEdgeTest, ExtraArgumentsBeyondSixIgnored) {
  Asm a("argsum");
  a.Add(R0, R0, R5).Halt();
  const std::vector<uint64_t> args{1, 0, 0, 0, 0, 6, 999, 999};
  const RunOutcome out = vm_.Run(*a.Finish(), args, RunOptions{});
  EXPECT_EQ(out.ret, 7u);  // r0=1 + r5=6; args 7 and 8 dropped.
}

TEST_F(VmEdgeTest, ShiftAmountsMasked) {
  Asm a("shifts");
  a.LoadImm(R1, 1).LoadImm(R2, 64).Shl(R0, R1, R2).Halt();  // 64 & 63 == 0.
  EXPECT_EQ(vm_.Run(*a.Finish(), {}, RunOptions{}).ret, 1u);
}

TEST_F(VmEdgeTest, SignedBranchesUseSignedComparison) {
  Asm a("signed");
  auto less = a.NewLabel();
  a.LoadImm(R1, -5).LoadImm(R2, 3);
  a.BltS(R1, R2, less);
  a.LoadImm(R0, 0).Halt();
  a.Bind(less);
  a.LoadImm(R0, 1).Halt();
  EXPECT_EQ(vm_.Run(*a.Finish(), {}, RunOptions{}).ret, 1u);

  // Unsigned comparison sees -5 as huge.
  Asm b("unsigned");
  auto less_u = b.NewLabel();
  b.LoadImm(R1, -5).LoadImm(R2, 3);
  b.BltU(R1, R2, less_u);
  b.LoadImm(R0, 0).Halt();
  b.Bind(less_u);
  b.LoadImm(R0, 1).Halt();
  EXPECT_EQ(vm_.Run(*b.Finish(), {}, RunOptions{}).ret, 0u);
}

TEST_F(VmEdgeTest, RawEscapeHatchStillVerified) {
  Asm a("raw");
  a.Raw(Instruction{static_cast<Op>(200), 0, 0, 0, 0});
  a.Halt();
  EXPECT_FALSE(a.Finish().ok());
}

TEST_F(VmEdgeTest, CallToUnregisteredIdTraps) {
  Asm a("wildcall");
  a.Call(777).Halt();
  EXPECT_EQ(vm_.Run(*a.Finish(), {}, RunOptions{}).status, Status::kSfiTrap);
}

// --- File system: multi-block reads ---------------------------------------

class FsEdgeTest : public ::testing::Test {
 protected:
  FsEdgeTest()
      : disk_(DiskParams{}, &clock_),
        cache_(64, 8, &disk_, &clock_),
        fs_(&disk_, &cache_, &txn_, &host_, &ns_) {}
  ManualClock clock_;
  SimDisk disk_;
  BufferCache cache_;
  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  FlatFileSystem fs_;
};

TEST_F(FsEdgeTest, ReadSpanningBlocksFetchesEach) {
  Result<FileId> id = fs_.CreateFile("f", 16 * 4096);
  ASSERT_TRUE(id.ok());
  Result<OpenFile*> f = fs_.Open(*id);
  ASSERT_TRUE(f.ok());
  // Bytes [2000, 12000) starting mid-block: touches blocks 0, 1, 2.
  Result<OpenFile::ReadResult> r = (*f)->Read(2000, 10000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache_.stats().demand_reads, 3u);
  EXPECT_GT(r->stall, 0u);
}

TEST_F(FsEdgeTest, SequentialWindowStopsAtEof) {
  Result<FileId> id = fs_.CreateFile("f", 3 * 4096);
  ASSERT_TRUE(id.ok());
  Result<OpenFile*> f = fs_.Open(*id);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Read(0, 4096).ok());
  ASSERT_TRUE((*f)->Read(4096, 4096).ok());  // Sequential: prefetch ahead.
  // Only one block remains before EOF; the window must clamp.
  EXPECT_LE((*f)->stats().prefetches_enqueued, 1u);
}

TEST_F(FsEdgeTest, CursorAdvancesAcrossReads) {
  Result<FileId> id = fs_.CreateFile("f", 8 * 4096);
  ASSERT_TRUE(id.ok());
  Result<OpenFile*> f = fs_.Open(*id);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Read(4096).ok());  // Cursor read.
  EXPECT_EQ((*f)->offset(), 4096u);
  ASSERT_TRUE((*f)->Read(100).ok());
  EXPECT_EQ((*f)->offset(), 4196u);
}

TEST_F(FsEdgeTest, PrefetchOfCachedBlockIsFreeTrue) {
  Result<FileId> id = fs_.CreateFile("f", 8 * 4096);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cache_.Read(0).ok());
  EXPECT_TRUE(cache_.Prefetch(0));  // Already cached: trivially satisfied.
  EXPECT_EQ(cache_.stats().prefetches_issued, 0u);
}

// --- Concurrent event dispatch ---------------------------------------------

TEST(EventStressTest, ConcurrentAsyncDispatches) {
  TxnManager txn;
  HostCallTable host;
  std::atomic<uint64_t> runs{0};
  EventGraftPoint point("stress.ev", EventGraftPoint::Config{}, &txn, &host,
                        nullptr);
  auto counter = std::make_shared<Graft>(
      "counter",
      [&runs](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        runs.fetch_add(1);
        return 0ull;
      },
      kRoot);
  counter->account().SetLimit(ResourceType::kThreads, 64);
  ASSERT_EQ(point.AddHandler(counter, 1), Status::kOk);

  for (int i = 0; i < 32; ++i) {
    point.DispatchAsync({static_cast<uint64_t>(i)});
  }
  point.Drain();
  EXPECT_EQ(runs.load(), 32u);
  EXPECT_EQ(point.stats().handler_runs, 32u);
  EXPECT_EQ(counter->account().usage(ResourceType::kThreads), 0u);
}

TEST(EventStressTest, MixedSyncAsyncDispatch) {
  TxnManager txn;
  HostCallTable host;
  std::atomic<uint64_t> runs{0};
  EventGraftPoint point("mixed.ev", EventGraftPoint::Config{}, &txn, &host,
                        nullptr);
  auto counter = std::make_shared<Graft>(
      "counter",
      [&runs](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        runs.fetch_add(1);
        return 0ull;
      },
      kRoot);
  counter->account().SetLimit(ResourceType::kThreads, 8);
  ASSERT_EQ(point.AddHandler(counter, 1), Status::kOk);

  std::thread t([&point] {
    for (int i = 0; i < 10; ++i) {
      point.DispatchAsync({1});
    }
  });
  for (int i = 0; i < 10; ++i) {
    point.Dispatch({});
  }
  t.join();
  point.Drain();
  // Every dispatched event ran its handler — thread-limit pressure (limit
  // 8, 10 async dispatches in flight) degrades to inline delivery, never a
  // dropped event.
  EXPECT_EQ(runs.load(), 20u);
  const auto stats = point.stats();
  EXPECT_EQ(stats.events, 20u);
  EXPECT_EQ(stats.handler_runs, 20u);
}

TEST(EventStressTest, ThreadLimitZeroStillDeliversInline) {
  TxnManager txn;
  HostCallTable host;
  std::atomic<uint64_t> runs{0};
  EventGraftPoint point("nothread.ev", EventGraftPoint::Config{}, &txn, &host,
                        nullptr);
  auto counter = std::make_shared<Graft>(
      "counter",
      [&runs](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        runs.fetch_add(1);
        return 0ull;
      },
      kRoot);
  // No thread budget at all: every async dispatch must degrade to a
  // synchronous inline run on the dispatching thread.
  counter->account().SetLimit(ResourceType::kThreads, 0);
  ASSERT_EQ(point.AddHandler(counter, 1), Status::kOk);

  for (int i = 0; i < 16; ++i) {
    point.DispatchAsync({static_cast<uint64_t>(i)});
  }
  point.Drain();
  EXPECT_EQ(runs.load(), 16u);
  const auto stats = point.stats();
  EXPECT_EQ(stats.handler_runs, 16u);
  EXPECT_EQ(stats.async_inline_runs, 16u);
  EXPECT_EQ(stats.async_pool_runs, 0u);
}

TEST(EventStressTest, DrainRacesDispatchAsync) {
  TxnManager txn;
  HostCallTable host;
  std::atomic<uint64_t> runs{0};
  EventGraftPoint point("drainrace.ev", EventGraftPoint::Config{}, &txn, &host,
                        nullptr);
  auto counter = std::make_shared<Graft>(
      "counter",
      [&runs](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        runs.fetch_add(1);
        return 0ull;
      },
      kRoot);
  counter->account().SetLimit(ResourceType::kThreads, 16);
  ASSERT_EQ(point.AddHandler(counter, 1), Status::kOk);

  constexpr int kDispatchers = 4;
  constexpr int kPerDispatcher = 50;
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(kDispatchers);
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&point] {
      for (int i = 0; i < kPerDispatcher; ++i) {
        point.DispatchAsync({1});
      }
    });
  }
  // Drain concurrently with the dispatchers: every Drain call must return
  // (no deadlock, no stranded in-flight count) even while new dispatches
  // keep arriving.
  std::thread drainer([&point] {
    for (int i = 0; i < 20; ++i) {
      point.Drain();
      std::this_thread::yield();
    }
  });
  for (auto& t : dispatchers) {
    t.join();
  }
  drainer.join();
  point.Drain();
  EXPECT_EQ(runs.load(), static_cast<uint64_t>(kDispatchers) * kPerDispatcher);
  EXPECT_EQ(counter->account().usage(ResourceType::kThreads), 0u);
}

TEST(EventStressTest, StatsInvariantsUnderMixedDispatch) {
  TxnManager txn;
  HostCallTable host;
  EventGraftPoint point("invariant.ev", EventGraftPoint::Config{}, &txn, &host,
                        nullptr);
  auto make_counter = [](const std::string& name) {
    return std::make_shared<Graft>(
        name,
        [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
          return 0ull;
        },
        kRoot);
  };
  auto a = make_counter("a");
  auto b = make_counter("b");
  a->account().SetLimit(ResourceType::kThreads, 4);
  b->account().SetLimit(ResourceType::kThreads, 1);  // Mostly inline.
  ASSERT_EQ(point.AddHandler(a, 1), Status::kOk);
  ASSERT_EQ(point.AddHandler(b, 2), Status::kOk);

  constexpr uint64_t kSync = 25;
  constexpr uint64_t kAsync = 25;
  for (uint64_t i = 0; i < kSync; ++i) {
    point.Dispatch({});
  }
  for (uint64_t i = 0; i < kAsync; ++i) {
    point.DispatchAsync({i});
  }
  point.Drain();

  // Documented invariants (event_point.h): with a fixed handler set and no
  // aborts, every event reaches every handler exactly once, and every
  // async invocation is accounted as either a pool run or an inline run.
  const auto stats = point.stats();
  EXPECT_EQ(stats.events, kSync + kAsync);
  EXPECT_EQ(stats.handler_runs, (kSync + kAsync) * 2);
  EXPECT_EQ(stats.handler_aborts, 0u);
  EXPECT_EQ(stats.async_pool_runs + stats.async_inline_runs, kAsync * 2);
  EXPECT_EQ(a->account().usage(ResourceType::kThreads), 0u);
  EXPECT_EQ(b->account().usage(ResourceType::kThreads), 0u);
}

// --- Watchdog cross-thread arming -----------------------------------------

TEST(WatchdogCrossThreadTest, ArmForOtherThread) {
  Watchdog dog(1'000);
  std::atomic<uint64_t> victim_os_id{0};
  std::atomic<bool> victim_aborted{false};

  std::thread victim([&] {
    TxnManager manager;
    Transaction* txn = manager.Begin();
    victim_os_id.store(KernelContext::Current().os_id);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!TxnManager::AbortPending() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    victim_aborted.store(TxnManager::AbortPending());
    manager.Abort(txn, Status::kTxnTimedOut);
  });

  while (victim_os_id.load() == 0) {
    std::this_thread::yield();
  }
  // A supervisor thread arms a budget for the victim.
  (void)dog.ArmFor(victim_os_id.load(), 2'000, Status::kTxnTimedOut);
  victim.join();
  EXPECT_TRUE(victim_aborted.load());
  EXPECT_GE(dog.fires(), 1u);
}

}  // namespace
}  // namespace vino
