// Unit tests for the sfi module's static pieces: ISA metadata, program
// verification, encode/decode, the builder and text assemblers, and the
// callable hash table.

#include <gtest/gtest.h>

#include "src/sfi/assembler.h"
#include "src/sfi/callable_table.h"
#include "src/sfi/host.h"
#include "src/sfi/isa.h"
#include "src/sfi/program.h"

namespace vino {
namespace {

TEST(IsaTest, OpNameRoundTrip) {
  for (size_t i = 0; i < static_cast<size_t>(Op::kOpCount); ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_EQ(OpFromName(OpName(op)), op) << "op " << i;
  }
  EXPECT_EQ(OpFromName("bogus"), Op::kOpCount);
}

TEST(IsaTest, Classification) {
  EXPECT_TRUE(IsLoad(Op::kLd32));
  EXPECT_FALSE(IsLoad(Op::kSt32));
  EXPECT_TRUE(IsStore(Op::kSt8));
  EXPECT_TRUE(IsBranch(Op::kJmp));
  EXPECT_TRUE(IsBranch(Op::kBeq));
  EXPECT_FALSE(IsBranch(Op::kCall));
  EXPECT_TRUE(WritesRd(Op::kAdd));
  EXPECT_FALSE(WritesRd(Op::kSt64));
  EXPECT_TRUE(ReadsRs2(Op::kSt64));  // Store value register.
}

TEST(IsaTest, CallClassification) {
  EXPECT_TRUE(IsCall(Op::kCall));
  EXPECT_TRUE(IsCall(Op::kCallR));
  EXPECT_TRUE(IsCall(Op::kCheckedCallR));
  EXPECT_FALSE(IsCall(Op::kJmp));
  EXPECT_FALSE(IsCall(Op::kSandboxAddr));
}

TEST(IsaTest, AccessWidth) {
  EXPECT_EQ(AccessWidth(Op::kLd8), 1u);
  EXPECT_EQ(AccessWidth(Op::kSt16), 2u);
  EXPECT_EQ(AccessWidth(Op::kLd32), 4u);
  EXPECT_EQ(AccessWidth(Op::kSt64), 8u);
  EXPECT_EQ(AccessWidth(Op::kAdd), 0u);
}

TEST(VerifyTest, EmptyProgramRejected) {
  Program p;
  EXPECT_EQ(VerifyProgram(p), Status::kBadGraft);
}

TEST(VerifyTest, MustEndInHaltOrJmp) {
  Program p;
  p.code.push_back(Instruction{Op::kAdd, 1, 2, 3, 0});
  EXPECT_EQ(VerifyProgram(p), Status::kBadGraft);
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_EQ(VerifyProgram(p), Status::kOk);
}

TEST(VerifyTest, BranchTargetOutOfRange) {
  Program p;
  p.code.push_back(Instruction{Op::kJmp, 0, 0, 0, 5});
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_EQ(VerifyProgram(p), Status::kBadGraft);
  p.code[0].imm = -1;
  EXPECT_EQ(VerifyProgram(p), Status::kBadGraft);
  p.code[0].imm = 1;
  EXPECT_EQ(VerifyProgram(p), Status::kOk);
}

TEST(VerifyTest, InstrumentationOpsForbiddenInRawPrograms) {
  Program p;
  p.code.push_back(Instruction{Op::kSandboxAddr, 14, 1, 0, 0});
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_EQ(VerifyProgram(p), Status::kSfiBadOpcode);
  p.instrumented = true;
  EXPECT_EQ(VerifyProgram(p), Status::kOk);
}

TEST(VerifyTest, RegisterIndexOutOfRange) {
  Program p;
  p.code.push_back(Instruction{Op::kAdd, 16, 0, 0, 0});
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_EQ(VerifyProgram(p), Status::kBadGraft);
}

TEST(EncodeTest, RoundTrip) {
  Asm a("roundtrip");
  auto loop = a.NewLabel();
  a.LoadImm(R1, 10);
  a.LoadImm(R2, 0);
  a.Bind(loop);
  a.AddI(R2, R2, 3);
  a.AddI(R1, R1, -1);
  a.LoadImm(R3, 0);
  a.Bne(R1, R3, loop);
  a.Mov(R0, R2);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());

  const std::vector<uint8_t> bytes = EncodeProgram(*p);
  Result<Program> decoded = DecodeProgram(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, p->name);
  EXPECT_EQ(decoded->code, p->code);
  EXPECT_EQ(decoded->instrumented, p->instrumented);
  EXPECT_EQ(decoded->direct_call_ids, p->direct_call_ids);
}

TEST(EncodeTest, TruncatedBytesRejected) {
  Asm a("t");
  a.LoadImm(R0, 1);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> bytes = EncodeProgram(*p);
  bytes.pop_back();
  EXPECT_FALSE(DecodeProgram(bytes).ok());
}

TEST(EncodeTest, BadMagicRejected) {
  std::vector<uint8_t> bytes(32, 0);
  EXPECT_FALSE(DecodeProgram(bytes).ok());
}

namespace {
void PatchU32(std::vector<uint8_t>& bytes, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[pos + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (i * 8));
  }
}
}  // namespace

TEST(EncodeTest, DecodeBombCountsRejected) {
  // A tiny container whose attacker-controlled counts claim huge tables
  // must be refused before any resize — decoding a 50-byte file may not
  // allocate megabytes. Layout: magic, version, instrumented, sandbox_log2,
  // name_len("t"), name, call_count, code_count, code...
  Asm a("t");
  a.LoadImm(R0, 1);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const std::vector<uint8_t> good = EncodeProgram(*p);
  ASSERT_TRUE(DecodeProgram(good).ok());
  const size_t call_count_pos = 16 + 4 + p->name.size();
  const size_t code_count_pos = call_count_pos + 4;

  // call_count far beyond the bytes present (and beyond the hard cap).
  std::vector<uint8_t> bomb = good;
  PatchU32(bomb, call_count_pos, 0xffffffffu);
  EXPECT_FALSE(DecodeProgram(bomb).ok());

  // call_count under the 2^20 hard cap but over the remaining-bytes bound.
  bomb = good;
  PatchU32(bomb, call_count_pos, 1u << 16);
  EXPECT_FALSE(DecodeProgram(bomb).ok());

  // code_count claiming 2^24 instructions in a two-instruction file.
  bomb = good;
  PatchU32(bomb, code_count_pos, 1u << 24);
  EXPECT_FALSE(DecodeProgram(bomb).ok());

  // code_count under the cap but over what the bytes can hold.
  bomb = good;
  PatchU32(bomb, code_count_pos, 1u << 12);
  EXPECT_FALSE(DecodeProgram(bomb).ok());
}

TEST(AsmTest, UnboundLabelFails) {
  Asm a("bad");
  auto l = a.NewLabel();
  a.Jmp(l);
  a.Halt();
  EXPECT_FALSE(a.Finish().ok());
}

TEST(AsmTest, DirectCallsRecorded) {
  Asm a("calls");
  a.Call(3).Call(7).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->direct_call_ids, (std::vector<uint32_t>{3, 7}));
}

TEST(ProfileTest, CountsClasses) {
  Asm a("profile");
  a.Ld32(R1, R2).St32(R2, R1).Call(1).CallR(R3).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const ProgramProfile prof = ProfileProgram(*p);
  EXPECT_EQ(prof.total, 5u);
  EXPECT_EQ(prof.loads, 1u);
  EXPECT_EQ(prof.stores, 1u);
  EXPECT_EQ(prof.direct_calls, 1u);
  EXPECT_EQ(prof.indirect_calls, 1u);
}

// --- Text assembler ----------------------------------------------------

TEST(TextAsmTest, BasicProgram) {
  const char* src = R"(
    ; compute 6 * 7
    loadi r1, 6
    loadi r2, 7
    mul r0, r1, r2
    halt
  )";
  Result<Program> p = Assemble(src, "mul6x7", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->code.size(), 4u);
  EXPECT_EQ(p->code[2].op, Op::kMul);
}

TEST(TextAsmTest, LabelsAndBranches) {
  const char* src = R"(
    loadi r1, 5
    loadi r0, 0
    loop:
      add r0, r0, r1
      addi r1, r1, -1
      loadi r2, 0
      bne r1, r2, loop
    halt
  )";
  Result<Program> p = Assemble(src, "sum", nullptr);
  ASSERT_TRUE(p.ok());
  // The bne must point at the instruction after the label (index 2).
  EXPECT_EQ(p->code[5].op, Op::kBne);
  EXPECT_EQ(p->code[5].imm, 2);
}

TEST(TextAsmTest, HexImmediatesAndComments) {
  const char* src = "loadi r1, 0xff  # hex\nandi r0, r1, 0x0f\nhalt\n";
  Result<Program> p = Assemble(src, "hex", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->code[0].imm, 255);
  EXPECT_EQ(p->code[1].imm, 15);
}

TEST(TextAsmTest, CallByName) {
  HostCallTable host;
  const uint32_t id = host.Register(
      "kernel.noop", [](HostCallContext&) -> Result<uint64_t> { return 0ull; },
      /*graft_callable=*/true);
  Result<Program> p = Assemble("call kernel.noop\nhalt\n", "callbyname", &host);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->code[0].imm, static_cast<int64_t>(id));
  EXPECT_EQ(p->direct_call_ids, std::vector<uint32_t>{id});
}

TEST(TextAsmTest, UnknownHostFunctionFails) {
  HostCallTable host;
  EXPECT_FALSE(Assemble("call no.such.fn\nhalt\n", "bad", &host).ok());
}

TEST(TextAsmTest, SyntaxErrors) {
  EXPECT_FALSE(Assemble("frobnicate r1\nhalt\n", "bad", nullptr).ok());
  EXPECT_FALSE(Assemble("loadi r99, 1\nhalt\n", "bad", nullptr).ok());
  EXPECT_FALSE(Assemble("jmp nowhere\nhalt\n", "bad", nullptr).ok());
  EXPECT_FALSE(Assemble("dup:\ndup:\nhalt\n", "bad", nullptr).ok());
  // Instrumentation mnemonics cannot be hand-written.
  EXPECT_FALSE(Assemble("sandbox r14, r1\nhalt\n", "bad", nullptr).ok());
}

// --- Callable table ------------------------------------------------------

TEST(CallableTableTest, InsertContainsRemove) {
  CallableTable table;
  EXPECT_FALSE(table.Contains(5));
  table.Insert(5);
  EXPECT_TRUE(table.Contains(5));
  EXPECT_EQ(table.size(), 1u);
  table.Insert(5);  // Duplicate is a no-op.
  EXPECT_EQ(table.size(), 1u);
  table.Remove(5);
  EXPECT_FALSE(table.Contains(5));
  table.Remove(5);  // Removing absent key is a no-op.
}

TEST(CallableTableTest, GrowsPastInitialCapacity) {
  CallableTable table(16);
  for (uint64_t i = 1; i <= 1000; ++i) {
    table.Insert(i);
  }
  EXPECT_EQ(table.size(), 1000u);
  for (uint64_t i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(table.Contains(i)) << i;
  }
  EXPECT_FALSE(table.Contains(1001));
}

TEST(CallableTableTest, TombstonesDoNotBreakProbing) {
  CallableTable table(16);
  for (uint64_t i = 1; i <= 8; ++i) {
    table.Insert(i);
  }
  for (uint64_t i = 1; i <= 8; i += 2) {
    table.Remove(i);
  }
  for (uint64_t i = 2; i <= 8; i += 2) {
    EXPECT_TRUE(table.Contains(i)) << i;
  }
  for (uint64_t i = 1; i <= 8; i += 2) {
    EXPECT_FALSE(table.Contains(i)) << i;
  }
  // Reinsert into tombstoned slots.
  for (uint64_t i = 1; i <= 8; i += 2) {
    table.Insert(i);
    EXPECT_TRUE(table.Contains(i));
  }
}

// --- Host table ----------------------------------------------------------

TEST(HostTableTest, RegisterAndLookup) {
  HostCallTable host;
  const uint32_t id1 = host.Register(
      "a", [](HostCallContext&) -> Result<uint64_t> { return 1ull; }, true);
  const uint32_t id2 = host.Register(
      "b", [](HostCallContext&) -> Result<uint64_t> { return 2ull; }, false);
  EXPECT_NE(id1, id2);
  EXPECT_NE(host.Lookup(id1), nullptr);
  EXPECT_EQ(host.Lookup(id1)->name, "a");
  EXPECT_TRUE(host.IsCallable(id1));
  EXPECT_FALSE(host.IsCallable(id2));  // Registered but not graft-callable.
  EXPECT_FALSE(host.IsCallable(9999));
  EXPECT_EQ(host.Lookup(0), nullptr);
  EXPECT_EQ(host.Lookup(9999), nullptr);
  ASSERT_TRUE(host.IdOf("b").ok());
  EXPECT_EQ(host.IdOf("b").value(), id2);
  EXPECT_FALSE(host.IdOf("c").ok());
}

}  // namespace
}  // namespace vino
