// Abort-cost drift detection (src/graft/drift.h): a graft whose recovery
// cost drifts away from its fitted a + b·L + c·G model is flagged
// kGraftDegraded after `strike_windows` consecutive bad windows, and —
// only under the opt-in eject policy — removed by its graft point on the
// next invocation. Well-behaved grafts must never trip the detector.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/trace.h"
#include "src/graft/drift.h"
#include "src/graft/event_point.h"
#include "src/graft/function_point.h"
#include "src/graft/graft.h"
#include "src/graft/namespace.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kRoot{0, true};

// A tight deterministic policy: 8-sample windows, a fit resting on ≥ 32
// prior samples, 2 strikes to degrade.
DriftPolicy TestPolicy(bool eject = false) {
  DriftPolicy policy;
  policy.eject = eject;
  policy.window_samples = 8;
  policy.min_model_samples = 32;
  policy.cost_ratio = 2.0;
  policy.min_excess_ns = 2'000;
  policy.strike_windows = 2;
  return policy;
}

// Synthetic abort shapes following cost = 1000 + 100·L + 10·G exactly, with
// decorrelated L and G so the least-squares fit is well-conditioned.
struct Shape {
  uint64_t locks;
  uint64_t undo;
  uint64_t cost;
};

Shape ConformingSample(uint64_t i) {
  const uint64_t locks = i % 4;
  const uint64_t undo = (i * 7) % 16;
  return {locks, undo, 1000 + 100 * locks + 10 * undo};
}

Shape InflatedSample(uint64_t i) {
  Shape shape = ConformingSample(i);
  shape.cost = 40'000;  // Far above both the fit and the historical median.
  return shape;
}

class DriftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::ResetForTest();
    trace::SetEnabled(true);
    SetGlobalDriftPolicy(TestPolicy());
  }
  void TearDown() override {
    SetGlobalDriftPolicy(DriftPolicy{});
    trace::SetEnabled(false);
    trace::ResetForTest();
  }

  // Feeds `n` samples through the graft's abort-cost path.
  static void Feed(Graft& graft, uint64_t n, Shape (*make)(uint64_t),
                   uint64_t start = 0) {
    for (uint64_t i = start; i < start + n; ++i) {
      const Shape s = make(i);
      graft.RecordAbortCost(s.locks, s.undo, s.cost);
    }
  }

  static std::shared_ptr<Graft> NativeGraft(const std::string& name) {
    return std::make_shared<Graft>(
        name,
        [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
          return 42ull;
        },
        kRoot);
  }

  static size_t CountDegradedEvents(uint64_t trace_id) {
    size_t count = 0;
    for (const trace::TaggedRecord& tagged : trace::Snapshot()) {
      if (tagged.record.event ==
              static_cast<uint16_t>(trace::Event::kGraftDegraded) &&
          tagged.record.a == trace_id) {
        ++count;
      }
    }
    return count;
  }
};

TEST_F(DriftTest, DetectorIgnoresConformingWindows) {
  DriftDetector detector;
  AbortCostModel model;
  LatencyHistogram hist;
  const DriftPolicy policy = TestPolicy();
  for (uint64_t i = 0; i < 80; ++i) {
    const Shape s = ConformingSample(i);
    model.Record(s.locks, s.undo, s.cost);
    hist.Record(s.cost);
    const DriftVerdict verdict =
        detector.Record(policy, model, hist, s.locks, s.undo, s.cost);
    EXPECT_FALSE(verdict.drifted) << "sample " << i;
    EXPECT_FALSE(verdict.degraded);
    EXPECT_EQ(verdict.strikes, 0u);
    // Windows tumble: only every 8th sample completes one, and the first
    // evaluated window needs min_model_samples beyond the window itself.
    if ((i + 1) % policy.window_samples != 0 || i + 1 < 40) {
      EXPECT_FALSE(verdict.evaluated) << "sample " << i;
    } else {
      EXPECT_TRUE(verdict.evaluated) << "sample " << i;
      // The synthetic stream is exactly linear, so the window mean should
      // sit on the prediction.
      EXPECT_NEAR(verdict.window_mean_cost_ns, verdict.predicted_cost_ns,
                  verdict.predicted_cost_ns * 0.05);
    }
  }
}

TEST_F(DriftTest, DetectorDegradesAfterStrikeWindowsAndLatchesBaseline) {
  DriftDetector detector;
  AbortCostModel model;
  LatencyHistogram hist;
  const DriftPolicy policy = TestPolicy();
  auto feed = [&](uint64_t n, Shape (*make)(uint64_t),
                  uint64_t start) -> DriftVerdict {
    DriftVerdict last;
    for (uint64_t i = start; i < start + n; ++i) {
      const Shape s = make(i);
      model.Record(s.locks, s.undo, s.cost);
      hist.Record(s.cost);
      last = detector.Record(policy, model, hist, s.locks, s.undo, s.cost);
    }
    return last;
  };

  ASSERT_FALSE(feed(40, ConformingSample, 0).drifted);  // Healthy baseline.

  const DriftVerdict first = feed(8, InflatedSample, 40);
  EXPECT_TRUE(first.evaluated);
  EXPECT_TRUE(first.drifted);
  EXPECT_FALSE(first.degraded);  // One strike.
  EXPECT_EQ(first.strikes, 1u);

  const DriftVerdict second = feed(8, InflatedSample, 48);
  EXPECT_TRUE(second.drifted);
  EXPECT_TRUE(second.degraded);  // Two strikes: tripped.
  EXPECT_EQ(second.strikes, 2u);
  // Baseline latch: the long-run model absorbed 16 inflated samples, but
  // the second window was judged against the pre-drift prediction.
  EXPECT_EQ(second.predicted_cost_ns, first.predicted_cost_ns);
  EXPECT_GT(second.window_mean_cost_ns,
            second.predicted_cost_ns * policy.cost_ratio);
}

TEST_F(DriftTest, CleanWindowResetsStrikes) {
  DriftDetector detector;
  AbortCostModel model;
  LatencyHistogram hist;
  const DriftPolicy policy = TestPolicy();
  auto feed = [&](uint64_t n, Shape (*make)(uint64_t),
                  uint64_t start) -> DriftVerdict {
    DriftVerdict last;
    for (uint64_t i = start; i < start + n; ++i) {
      const Shape s = make(i);
      model.Record(s.locks, s.undo, s.cost);
      hist.Record(s.cost);
      last = detector.Record(policy, model, hist, s.locks, s.undo, s.cost);
    }
    return last;
  };

  feed(40, ConformingSample, 0);
  EXPECT_EQ(feed(8, InflatedSample, 40).strikes, 1u);
  // One transient bad window followed by a healthy one is noise, not drift.
  const DriftVerdict healthy = feed(8, ConformingSample, 48);
  EXPECT_FALSE(healthy.drifted);
  EXPECT_EQ(healthy.strikes, 0u);
  EXPECT_EQ(feed(8, InflatedSample, 56).strikes, 1u);  // Counting restarts.
}

TEST_F(DriftTest, WellBehavedGraftNeverDegrades) {
  auto graft = NativeGraft("steady");
  Feed(*graft, 200, ConformingSample);
  EXPECT_FALSE(graft->degraded());
  EXPECT_EQ(CountDegradedEvents(graft->trace_id()), 0u);
}

TEST_F(DriftTest, DriftedGraftDegradesOnceAndPostsTrace) {
  auto graft = NativeGraft("drifter");
  Feed(*graft, 40, ConformingSample);
  EXPECT_FALSE(graft->degraded());
  Feed(*graft, 16, InflatedSample, 40);
  EXPECT_TRUE(graft->degraded());
  // Degradation is sticky and the event posts exactly once, even as abort
  // samples keep arriving.
  Feed(*graft, 32, InflatedSample, 56);
  EXPECT_TRUE(graft->degraded());
  EXPECT_EQ(CountDegradedEvents(graft->trace_id()), 1u);
  // The model kept accumulating after the verdict (graftstat still fits it).
  EXPECT_EQ(graft->abort_cost().samples(), 88u);
}

TEST_F(DriftTest, DetectDisabledPolicyNeverDegrades) {
  DriftPolicy policy = TestPolicy();
  policy.detect = false;
  SetGlobalDriftPolicy(policy);
  auto graft = NativeGraft("unwatched");
  Feed(*graft, 40, ConformingSample);
  Feed(*graft, 32, InflatedSample, 40);
  EXPECT_FALSE(graft->degraded());
}

TEST_F(DriftTest, FunctionPointEjectsDegradedGraftUnderOptInPolicy) {
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn, &host, &ns);

  auto graft = NativeGraft("degraded-fn");
  Feed(*graft, 40, ConformingSample);
  Feed(*graft, 16, InflatedSample, 40);
  ASSERT_TRUE(graft->degraded());

  // Default policy (eject off): the degraded graft keeps running — the
  // detector observes, the operator decides.
  ASSERT_EQ(point.Replace(graft), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 42u);
  EXPECT_TRUE(point.grafted());
  EXPECT_EQ(point.stats().forcible_removals, 0u);

  // Opt-in eject: the next invocation still commits (and its valid result
  // counts), but the graft is forcibly removed afterwards.
  SetGlobalDriftPolicy(TestPolicy(/*eject=*/true));
  EXPECT_EQ(point.Invoke({}), 42u);
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(point.stats().forcible_removals, 1u);

  // Back to the clean default path.
  EXPECT_EQ(point.Invoke({}), 7u);
}

TEST_F(DriftTest, FunctionPointNeverEjectsHealthyGraftUnderEjectPolicy) {
  SetGlobalDriftPolicy(TestPolicy(/*eject=*/true));
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn, &host, &ns);
  auto graft = NativeGraft("healthy-fn");
  Feed(*graft, 200, ConformingSample);
  ASSERT_EQ(point.Replace(graft), Status::kOk);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(point.Invoke({}), 42u);
  }
  EXPECT_TRUE(point.grafted());
  EXPECT_EQ(point.stats().forcible_removals, 0u);
}

TEST_F(DriftTest, EventPointRemovesDegradedHandlerUnderOptInPolicy) {
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  EventGraftPoint point("ev", EventGraftPoint::Config{}, &txn, &host, &ns);

  auto bad = NativeGraft("degraded-handler");
  Feed(*bad, 40, ConformingSample);
  Feed(*bad, 16, InflatedSample, 40);
  ASSERT_TRUE(bad->degraded());
  auto good = NativeGraft("healthy-handler");

  ASSERT_EQ(point.AddHandler(bad, 1), Status::kOk);
  ASSERT_EQ(point.AddHandler(good, 2), Status::kOk);

  // Eject off: both handlers stay.
  point.Dispatch({});
  EXPECT_EQ(point.handler_count(), 2u);

  SetGlobalDriftPolicy(TestPolicy(/*eject=*/true));
  point.Dispatch({});
  EXPECT_EQ(point.handler_count(), 1u);  // Degraded handler removed...
  EXPECT_EQ(point.RemoveHandler("healthy-handler"), Status::kOk);  // ...not this.
}

TEST_F(DriftTest, AbortCostWindowEvictsOldestSamples) {
  AbortCostWindow window(4);
  for (uint64_t i = 0; i < 4; ++i) {
    window.Record(1, 2, 100);
  }
  AbortCostWindow::Snapshot snap = window.Read();
  EXPECT_EQ(snap.samples, 4u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_DOUBLE_EQ(snap.mean_cost_ns, 100.0);

  for (uint64_t i = 0; i < 4; ++i) {
    window.Record(3, 6, 500);  // Displace the whole first generation.
  }
  snap = window.Read();
  EXPECT_EQ(snap.samples, 4u);
  EXPECT_EQ(snap.total, 8u);
  EXPECT_DOUBLE_EQ(snap.mean_locks, 3.0);
  EXPECT_DOUBLE_EQ(snap.mean_undo, 6.0);
  EXPECT_DOUBLE_EQ(snap.mean_cost_ns, 500.0);
}

}  // namespace
}  // namespace vino
