// The Tier-1 direct-threaded engine (src/sfi/threaded_vm.h):
//  * CompileThreaded's eligibility gate (instrumented + verified only) and
//    the fallback ladder (no artifact -> Tier 0, never an error);
//  * observable-for-observable parity with the Tier-0 interpreter across
//    ALU, memory, control flow, host calls, Rule-7 aborts, fuel
//    exhaustion, and the abort-poll cadence (including the poll_interval
//    == 0 clamp);
//  * concurrent invocations sharing one compiled artifact (the TSan stage
//    of tools/check.sh runs this binary).
// The randomized differential sweep lives in tests/property_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "src/sfi/assembler.h"
#include "src/sfi/isa.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/misfit.h"
#include "src/sfi/threaded_vm.h"
#include "src/sfi/verifier.h"
#include "src/sfi/vm.h"

namespace vino {
namespace {

// Instrument + verify + compile: the same pipeline the loader runs, so the
// program under test is a faithful Tier-1 citizen.
Program MakeTier1(const Program& raw, const HostCallTable* host = nullptr) {
  Result<Program> inst = Instrument(raw, MisfitOptions{16});
  EXPECT_TRUE(inst.ok());
  VerifierOptions voptions;
  voptions.host = host;
  const VerifierReport report = VerifySandbox(*inst, voptions);
  EXPECT_TRUE(report.ok()) << report.reason << " at pc " << report.fail_pc;
  Program p = *inst;
  p.verified = true;
  p.compiled = CompileThreaded(p);
  EXPECT_NE(p.compiled, nullptr);
  return p;
}

// Runs the same program+args on both tiers against identical fresh images
// and asserts every observable agrees. Returns the Tier-1 outcome.
RunOutcome AssertTierParity(const Program& tier1_program,
                            std::span<const uint64_t> args,
                            const RunOptions& base_options,
                            const HostCallTable* host) {
  Program tier0_program = tier1_program;
  tier0_program.compiled = nullptr;

  MemoryImage image0(8192, 16);
  MemoryImage image1(8192, 16);
  uint64_t regs0[kNumRegisters] = {};
  uint64_t regs1[kNumRegisters] = {};

  RunOptions options0 = base_options;
  options0.final_regs = regs0;
  RunOptions options1 = base_options;
  options1.final_regs = regs1;

  const Vm vm(host);
  const ThreadedVm tvm(host);
  const RunOutcome out0 = vm.Run(tier0_program, &image0, args, options0);
  const RunOutcome out1 = tvm.Run(tier1_program, &image1, args, options1);

  EXPECT_EQ(out1.status, out0.status);
  EXPECT_EQ(out1.ret, out0.ret);
  EXPECT_EQ(out1.instructions, out0.instructions);
  EXPECT_EQ(out0.tier, ExecTier::kTier0);
  EXPECT_EQ(out1.tier, ExecTier::kTier1);
  for (int i = 0; i < kNumRegisters; ++i) {
    EXPECT_EQ(regs1[i], regs0[i]) << "register r" << i << " diverged";
  }
  EXPECT_EQ(std::memcmp(image0.data(), image1.data(), image0.total_size()), 0)
      << "memory images diverged";
  return out1;
}

TEST(CompileThreadedTest, RequiresInstrumentedAndVerified) {
  Asm a("gate");
  a.LoadImm(R0, 7).Halt();
  Result<Program> raw = a.Finish();
  ASSERT_TRUE(raw.ok());

  // Uninstrumented: no Tier-1 form.
  EXPECT_EQ(CompileThreaded(*raw), nullptr);

  // Instrumented but unverified: still no Tier-1 form — the dropped checks
  // are exactly what the proof covers.
  Result<Program> inst = Instrument(*raw, MisfitOptions{16});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(CompileThreaded(*inst), nullptr);

  // Verified: compiles, one op per instruction.
  Program verified = *inst;
  ASSERT_TRUE(VerifySandbox(verified).ok());
  verified.verified = true;
  const auto compiled = CompileThreaded(verified);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->ops.size(), verified.code.size());
}

TEST(CompileThreadedTest, EmptyProgramDoesNotCompile) {
  Program p;
  p.instrumented = true;
  p.verified = true;
  EXPECT_EQ(CompileThreaded(p), nullptr);
}

TEST(ThreadedVmTest, FallsBackToTier0WithoutArtifact) {
  Asm a("fallback");
  a.LoadImm(R0, 41).AddI(R0, R0, 1).Halt();
  Result<Program> inst = Instrument(*a.Finish(), MisfitOptions{16});
  ASSERT_TRUE(inst.ok());
  Program p = *inst;
  ASSERT_TRUE(VerifySandbox(p).ok());
  p.verified = true;
  // Deliberately no CompileThreaded: the engine must run it anyway, on the
  // interpreter, and say so in the outcome.
  HostCallTable host;
  MemoryImage image(8192, 16);
  const ThreadedVm tvm(&host);
  const RunOutcome out = tvm.Run(p, &image, {}, RunOptions{});
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.ret, 42u);
  EXPECT_EQ(out.tier, ExecTier::kTier0);
}

TEST(ThreadedVmTest, AluAndMemoryParity) {
  HostCallTable host;
  Asm a("alu-mem");
  a.LoadImm(R1, 3);
  a.LoadImm(R2, 1000);
  for (int i = 0; i < 12; ++i) {
    a.Mul(R3, R1, R2);
    a.Sub(R3, R3, R1);
    a.ShrI(R4, R3, 2);
    a.St64(R2, R3, 64 + i * 8);
    a.Ld64(R5, R2, 64 + i * 8);
    a.Add(R0, R0, R5);
    a.St16(R2, R4, 512 + i * 2);
    a.Ld8(R6, R2, 512 + i * 2);
    a.Xor(R0, R0, R6);
  }
  a.Halt();
  const Program p = MakeTier1(*a.Finish(), &host);
  const uint64_t args[2] = {11, 22};
  const RunOutcome out = AssertTierParity(p, args, RunOptions{}, &host);
  EXPECT_EQ(out.status, Status::kOk);
}

TEST(ThreadedVmTest, ControlFlowAndDivByZeroParity) {
  HostCallTable host;
  Asm a("loops");
  auto top = a.NewLabel();
  auto out_label = a.NewLabel();
  a.LoadImm(R1, 50);   // Counter.
  a.LoadImm(R2, 0);
  a.LoadImm(R3, 7);
  a.Bind(top);
  a.AddI(R1, R1, -1);
  a.Add(R0, R0, R1);
  a.DivU(R4, R0, R2);  // Division by zero -> 0, both tiers.
  a.RemU(R5, R0, R2);
  a.BltS(R1, R3, out_label);
  a.Jmp(top);
  a.Bind(out_label);
  a.Halt();
  const RunOutcome out =
      AssertTierParity(MakeTier1(*a.Finish(), &host), {}, RunOptions{}, &host);
  EXPECT_EQ(out.status, Status::kOk);
}

TEST(ThreadedVmTest, HostCallSequenceAndRule7Parity) {
  // Two recording host tables (one per tier) observe the *sequence* of
  // calls and their first argument; the sequences must be identical.
  struct Recorder {
    HostCallTable host;
    std::vector<uint64_t> calls;
    uint32_t ok_id = 0;
    uint32_t hostile_id = 0;
    Recorder() {
      ok_id = host.Register(
          "t.record",
          [this](HostCallContext& ctx) -> Result<uint64_t> {
            calls.push_back(ctx.args[0]);
            return ctx.args[0] * 2;
          },
          true);
      hostile_id = host.Register(
          "t.hostile",
          [](HostCallContext&) -> Result<uint64_t> { return 99ull; },
          /*graft_callable=*/false);
    }
  };
  Recorder rec0;
  Recorder rec1;
  ASSERT_EQ(rec0.ok_id, rec1.ok_id);
  ASSERT_EQ(rec0.hostile_id, rec1.hostile_id);

  // Calls the recorder three times (indirect, so instrumentation rewrites
  // to kCheckedCallR), then hits the non-callable id: Rule 7 abort.
  Asm a("caller");
  a.LoadImm(R1, rec0.ok_id);
  a.LoadImm(R0, 5);
  a.CallR(R1);
  a.CallR(R1);
  a.CallR(R1);
  a.LoadImm(R1, rec0.hostile_id);
  a.CallR(R1);  // kSfiBadCall on both tiers.
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish(), MisfitOptions{16});
  ASSERT_TRUE(inst.ok());
  Program p = *inst;
  VerifierOptions voptions;
  voptions.host = &rec0.host;
  ASSERT_TRUE(VerifySandbox(p, voptions).ok());
  p.verified = true;
  p.compiled = CompileThreaded(p);
  ASSERT_NE(p.compiled, nullptr);

  Program tier0 = p;
  tier0.compiled = nullptr;
  MemoryImage image0(8192, 16);
  MemoryImage image1(8192, 16);
  const RunOutcome out0 = Vm(&rec0.host).Run(tier0, &image0, {}, RunOptions{});
  const RunOutcome out1 =
      ThreadedVm(&rec1.host).Run(p, &image1, {}, RunOptions{});
  EXPECT_EQ(out0.status, Status::kSfiBadCall);
  EXPECT_EQ(out1.status, Status::kSfiBadCall);
  EXPECT_EQ(out1.instructions, out0.instructions);
  EXPECT_EQ(rec1.calls, rec0.calls);
  EXPECT_EQ(rec1.calls.size(), 3u);
  // r0 threads through the calls: 5 -> 10 -> 20 -> 40.
  EXPECT_EQ(rec1.calls.back(), 20u);
}

TEST(ThreadedVmTest, HostCallErrorStatusParity) {
  auto make_host = [](HostCallTable& host) {
    return host.Register(
        "t.fail",
        [](HostCallContext&) -> Result<uint64_t> {
          return Status::kLimitExceeded;
        },
        true);
  };
  HostCallTable host0;
  HostCallTable host1;
  const uint32_t id = make_host(host0);
  ASSERT_EQ(id, make_host(host1));

  Asm a("failer");
  a.LoadImm(R1, id);
  a.CallR(R1);
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish(), MisfitOptions{16});
  ASSERT_TRUE(inst.ok());
  Program p = *inst;
  VerifierOptions voptions;
  voptions.host = &host0;
  ASSERT_TRUE(VerifySandbox(p, voptions).ok());
  p.verified = true;
  p.compiled = CompileThreaded(p);
  ASSERT_NE(p.compiled, nullptr);

  Program tier0 = p;
  tier0.compiled = nullptr;
  MemoryImage image0(8192, 16);
  MemoryImage image1(8192, 16);
  const RunOutcome out0 = Vm(&host0).Run(tier0, &image0, {}, RunOptions{});
  const RunOutcome out1 = ThreadedVm(&host1).Run(p, &image1, {}, RunOptions{});
  EXPECT_EQ(out0.status, Status::kLimitExceeded);
  EXPECT_EQ(out1.status, out0.status);
  EXPECT_EQ(out1.instructions, out0.instructions);
}

TEST(ThreadedVmTest, FuelExhaustionParity) {
  HostCallTable host;
  Asm a("spinner");
  auto top = a.NewLabel();
  a.LoadImm(R1, 1);
  a.Bind(top);
  a.Add(R2, R2, R1);
  a.Jmp(top);
  const Program p = MakeTier1(*a.Finish(), &host);

  for (const uint64_t fuel : {0ull, 1ull, 2ull, 97ull, 1000ull}) {
    RunOptions options;
    options.fuel = fuel;
    const RunOutcome out = AssertTierParity(p, {}, options, &host);
    EXPECT_EQ(out.status, Status::kSfiFuelExhausted) << "fuel=" << fuel;
    EXPECT_EQ(out.instructions, fuel) << "fuel=" << fuel;
  }
}

// Counting abort predicate: returns true after N polls, so the program
// stops mid-flight and the poll cadence itself becomes observable.
struct PollCounter {
  uint64_t polls = 0;
  uint64_t trip_after = 0;  // 0 = never trip.
  static bool Predicate(void* ctx) {
    auto* self = static_cast<PollCounter*>(ctx);
    ++self->polls;
    return self->trip_after != 0 && self->polls >= self->trip_after;
  }
};

TEST(ThreadedVmTest, AbortPollCadenceParity) {
  HostCallTable host;
  Asm a("pollee");
  auto top = a.NewLabel();
  a.LoadImm(R1, 1);
  a.Bind(top);
  a.Add(R2, R2, R1);
  a.Jmp(top);
  const Program p = MakeTier1(*a.Finish(), &host);
  Program tier0 = p;
  tier0.compiled = nullptr;

  for (const uint32_t interval : {1u, 7u, 64u}) {
    PollCounter c0;
    PollCounter c1;
    c0.trip_after = c1.trip_after = 5;
    RunOptions options;
    options.poll_interval = interval;
    options.abort_requested = &PollCounter::Predicate;

    MemoryImage image0(8192, 16);
    options.abort_ctx = &c0;
    const RunOutcome out0 = Vm(&host).Run(tier0, &image0, {}, options);
    MemoryImage image1(8192, 16);
    options.abort_ctx = &c1;
    const RunOutcome out1 = ThreadedVm(&host).Run(p, &image1, {}, options);

    EXPECT_EQ(out0.status, Status::kTxnAborted) << "interval=" << interval;
    EXPECT_EQ(out1.status, out0.status) << "interval=" << interval;
    EXPECT_EQ(out1.instructions, out0.instructions) << "interval=" << interval;
    EXPECT_EQ(c1.polls, c0.polls) << "interval=" << interval;
    EXPECT_EQ(c1.polls, 5u) << "interval=" << interval;
  }
}

TEST(ThreadedVmTest, PollIntervalZeroClampsToEveryInstruction) {
  // The PR 6 regression: poll_interval == 0 means "poll constantly", not
  // "poll after ~4B instructions". Tier 1 must clamp exactly like Tier 0.
  HostCallTable host;
  Asm a("clampee");
  auto top = a.NewLabel();
  a.LoadImm(R1, 1);
  a.Bind(top);
  a.Add(R2, R2, R1);
  a.Jmp(top);
  const Program p = MakeTier1(*a.Finish(), &host);

  PollCounter counter;
  counter.trip_after = 3;
  RunOptions options;
  options.poll_interval = 0;
  options.abort_requested = &PollCounter::Predicate;
  options.abort_ctx = &counter;
  MemoryImage image(8192, 16);
  const RunOutcome out = ThreadedVm(&host).Run(p, &image, {}, options);
  EXPECT_EQ(out.status, Status::kTxnAborted);
  EXPECT_EQ(out.tier, ExecTier::kTier1);
  // Clamped to every instruction: tripped at the 3rd dispatch.
  EXPECT_EQ(out.instructions, 3u);
  EXPECT_EQ(counter.polls, 3u);
}

TEST(ThreadedVmTest, ConcurrentRunsShareOneCompiledArtifact) {
  // One compiled artifact, many threads, each with its own image — the
  // graft-point situation. An atomic stop flag doubles as the abort
  // predicate so the test also races abort delivery against dispatch
  // (the check.sh TSan stage runs this).
  HostCallTable host;
  Asm a("shared");
  auto top = a.NewLabel();
  a.LoadImm(R1, 1);
  a.Bind(top);
  a.Add(R2, R2, R1);
  a.St64(R3, R2, 128);
  a.Ld64(R4, R3, 128);
  a.Jmp(top);
  const Program p = MakeTier1(*a.Finish(), &host);

  std::atomic<bool> stop{false};
  auto predicate = [](void* ctx) {
    return static_cast<std::atomic<bool>*>(ctx)->load(
        std::memory_order_relaxed);
  };
  const ThreadedVm tvm(&host);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> aborted{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      MemoryImage image(8192, 16);
      RunOptions options;
      options.poll_interval = 8;
      options.abort_requested = predicate;
      options.abort_ctx = &stop;
      const RunOutcome out = tvm.Run(p, &image, {}, options);
      if (out.status == Status::kTxnAborted) {
        aborted.fetch_add(1, std::memory_order_relaxed);
      }
      EXPECT_EQ(out.tier, ExecTier::kTier1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(aborted.load(), kThreads);
}

TEST(ExecEngineTest, TierNames) {
  EXPECT_EQ(ExecTierName(ExecTier::kTier0), "tier0");
  EXPECT_EQ(ExecTierName(ExecTier::kTier1), "tier1");
}

}  // namespace
}  // namespace vino
