// Transaction system tests: undo log replay, nesting, commit/abort
// semantics, accessor helpers, async abort requests, and the recycling
// slab's no-leak-across-reuse property.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/context.h"
#include "src/base/rng.h"
#include "src/txn/accessor.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_lock.h"
#include "src/txn/txn_manager.h"
#include "src/txn/undo_log.h"

namespace vino {
namespace {

TEST(UndoLogTest, ReplaysLifo) {
  UndoLog log;
  std::vector<int> order;
  log.PushClosure([&order] { order.push_back(1); });
  log.PushClosure([&order] { order.push_back(2); });
  log.PushClosure([&order] { order.push_back(3); });
  log.ReplayAndClear();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogTest, InlineEntriesAvoidAllocation) {
  UndoLog log;
  static uint64_t slot = 0;
  slot = 11;
  log.PushRestoreU64(&slot);
  slot = 99;
  log.ReplayAndClear();
  EXPECT_EQ(slot, 11u);
}

TEST(UndoLogTest, MergePreservesGlobalLifoOrder) {
  UndoLog parent;
  UndoLog child;
  std::vector<std::string> order;
  parent.PushClosure([&order] { order.push_back("parent-1"); });
  child.PushClosure([&order] { order.push_back("child-1"); });
  child.PushClosure([&order] { order.push_back("child-2"); });
  child.MergeInto(parent);
  EXPECT_TRUE(child.empty());
  EXPECT_EQ(parent.size(), 3u);
  parent.ReplayAndClear();
  // Child ops happened after parent-1, so they undo first, newest first.
  EXPECT_EQ(order,
            (std::vector<std::string>{"child-2", "child-1", "parent-1"}));
}

class TxnTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // No transaction may leak across tests.
    ASSERT_EQ(TxnManager::Current(), nullptr);
  }
  TxnManager manager_;
};

TEST_F(TxnTest, CommitDiscardUndo) {
  uint64_t state = 1;
  Transaction* txn = manager_.Begin();
  EXPECT_EQ(TxnManager::Current(), txn);
  TxnSet(&state, uint64_t{2});
  EXPECT_EQ(state, 2u);
  EXPECT_EQ(manager_.Commit(txn), Status::kOk);
  EXPECT_EQ(state, 2u);  // Committed state survives.
  EXPECT_EQ(TxnManager::Current(), nullptr);
}

TEST_F(TxnTest, AbortReplaysUndo) {
  uint64_t state = 1;
  Transaction* txn = manager_.Begin();
  TxnSet(&state, uint64_t{2});
  TxnSet(&state, uint64_t{3});
  manager_.Abort(txn, Status::kTxnAborted);
  EXPECT_EQ(state, 1u);  // Both writes undone, in LIFO order.
  EXPECT_EQ(TxnManager::Current(), nullptr);
}

TEST_F(TxnTest, TxnSetWithoutTransactionIsPlainWrite) {
  uint64_t state = 1;
  TxnSet(&state, uint64_t{5});
  EXPECT_EQ(state, 5u);
}

TEST_F(TxnTest, NestedCommitMergesIntoParent) {
  uint64_t a = 1;
  uint64_t b = 10;
  Transaction* parent = manager_.Begin();
  TxnSet(&a, uint64_t{2});

  Transaction* child = manager_.Begin();
  EXPECT_EQ(child->parent(), parent);
  EXPECT_EQ(child->depth(), 1);
  TxnSet(&b, uint64_t{20});
  EXPECT_EQ(manager_.Commit(child), Status::kOk);
  EXPECT_EQ(TxnManager::Current(), parent);

  // Aborting the parent now undoes the child's committed work too.
  manager_.Abort(parent, Status::kTxnAborted);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 10u);
}

TEST_F(TxnTest, NestedAbortDoesNotDisturbParent) {
  // "any graft can abort without aborting its calling graft" (§3.1).
  uint64_t a = 1;
  uint64_t b = 10;
  Transaction* parent = manager_.Begin();
  TxnSet(&a, uint64_t{2});

  Transaction* child = manager_.Begin();
  TxnSet(&b, uint64_t{20});
  manager_.Abort(child, Status::kTxnAborted);
  EXPECT_EQ(b, 10u);  // Child undone.
  EXPECT_EQ(a, 2u);   // Parent's write intact.
  EXPECT_EQ(TxnManager::Current(), parent);

  EXPECT_EQ(manager_.Commit(parent), Status::kOk);
  EXPECT_EQ(a, 2u);
}

TEST_F(TxnTest, DeepNesting) {
  uint64_t state[8] = {};
  std::vector<Transaction*> txns;
  for (int i = 0; i < 8; ++i) {
    txns.push_back(manager_.Begin());
    TxnSet(&state[i], uint64_t{1});
  }
  EXPECT_EQ(txns.back()->depth(), 7);
  // Commit the inner four, abort the rest: writes 4..7 merged upward into
  // txn 3, which aborts, undoing everything from depth >= 3.
  for (int i = 7; i >= 4; --i) {
    EXPECT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  manager_.Abort(txns[3], Status::kTxnAborted);
  for (int i = 2; i >= 0; --i) {
    EXPECT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  EXPECT_EQ(state[0], 1u);
  EXPECT_EQ(state[1], 1u);
  EXPECT_EQ(state[2], 1u);
  for (int i = 3; i < 8; ++i) {
    EXPECT_EQ(state[i], 0u) << i;
  }
}

TEST_F(TxnTest, RequestAbortTurnsCommitIntoAbort) {
  uint64_t state = 1;
  Transaction* txn = manager_.Begin();
  TxnSet(&state, uint64_t{2});
  txn->RequestAbort(Status::kTxnTimedOut);
  EXPECT_TRUE(txn->abort_requested());
  EXPECT_EQ(manager_.Commit(txn), Status::kTxnTimedOut);
  EXPECT_EQ(state, 1u);
  EXPECT_EQ(TxnManager::Current(), nullptr);
  EXPECT_EQ(manager_.stats().timeout_aborts, 1u);
}

TEST_F(TxnTest, PostedThreadAbortIsPickedUpByPoll) {
  Transaction* txn = manager_.Begin();
  const uint64_t os_id = KernelContext::Current().os_id;
  EXPECT_FALSE(TxnManager::AbortPending());

  EXPECT_TRUE(KernelContext::PostAbortRequest(
      os_id, static_cast<int32_t>(Status::kTxnTimedOut)));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_TRUE(txn->abort_requested());
  EXPECT_EQ(txn->abort_reason(), Status::kTxnTimedOut);
  manager_.Abort(txn, txn->abort_reason());
}

TEST_F(TxnTest, PostToUnknownThreadFails) {
  EXPECT_FALSE(KernelContext::PostAbortRequest(
      0xdeadbeef, static_cast<int32_t>(Status::kTxnTimedOut)));
}

TEST_F(TxnTest, StaleAbortRequestDoesNotPoisonNextTransaction) {
  const uint64_t os_id = KernelContext::Current().os_id;
  EXPECT_TRUE(KernelContext::PostAbortRequest(
      os_id, static_cast<int32_t>(Status::kTxnTimedOut)));
  // No transaction active: poll clears it.
  EXPECT_FALSE(TxnManager::AbortPending());
  Transaction* txn = manager_.Begin();
  EXPECT_FALSE(TxnManager::AbortPending());
  EXPECT_EQ(manager_.Commit(txn), Status::kOk);
}

TEST_F(TxnTest, TxnScopeAbortsIfNotCommitted) {
  uint64_t state = 1;
  {
    TxnScope scope(manager_);
    TxnSet(&state, uint64_t{2});
    // No commit: destructor aborts.
  }
  EXPECT_EQ(state, 1u);
  EXPECT_EQ(manager_.stats().aborts, 1u);
}

TEST_F(TxnTest, TxnScopeCommit) {
  uint64_t state = 1;
  {
    TxnScope scope(manager_);
    TxnSet(&state, uint64_t{2});
    EXPECT_EQ(scope.Commit(), Status::kOk);
  }
  EXPECT_EQ(state, 2u);
}

TEST_F(TxnTest, TxnOnAbortCompensation) {
  int opens = 0;
  {
    TxnScope scope(manager_);
    ++opens;  // "open a file"
    TxnOnAbort([&opens] { --opens; });
    scope.Abort(Status::kTxnAborted);
  }
  EXPECT_EQ(opens, 0);
}

TEST_F(TxnTest, StatsAccumulate) {
  for (int i = 0; i < 3; ++i) {
    Transaction* t = manager_.Begin();
    EXPECT_EQ(manager_.Commit(t), Status::kOk);
  }
  Transaction* outer = manager_.Begin();
  Transaction* inner = manager_.Begin();
  manager_.Abort(inner, Status::kTxnAborted);
  EXPECT_EQ(manager_.Commit(outer), Status::kOk);

  const TxnStats s = manager_.stats();
  EXPECT_EQ(s.begins, 5u);
  EXPECT_EQ(s.commits, 4u);
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.nested_begins, 1u);
}

TEST_F(TxnTest, DeferredDeleteRunsOnCommitOnly) {
  int deletes = 0;
  {
    Transaction* txn = manager_.Begin();
    TxnDeferDelete([&deletes] { ++deletes; });
    EXPECT_EQ(deletes, 0);  // Not yet: the transaction could still abort.
    EXPECT_EQ(manager_.Commit(txn), Status::kOk);
  }
  EXPECT_EQ(deletes, 1);
}

TEST_F(TxnTest, DeferredDeleteDiscardedOnAbort) {
  int deletes = 0;
  Transaction* txn = manager_.Begin();
  TxnDeferDelete([&deletes] { ++deletes; });
  manager_.Abort(txn, Status::kTxnAborted);
  EXPECT_EQ(deletes, 0);  // The aborted graft's delete never happened.
}

TEST_F(TxnTest, DeferredDeleteRidesNestedCommitToOutcome) {
  int deletes = 0;
  Transaction* outer = manager_.Begin();
  Transaction* inner = manager_.Begin();
  TxnDeferDelete([&deletes] { ++deletes; });
  ASSERT_EQ(manager_.Commit(inner), Status::kOk);
  EXPECT_EQ(deletes, 0);  // Inner committed, but the outer could abort.
  EXPECT_EQ(outer->deferred_count(), 1u);
  manager_.Abort(outer, Status::kTxnAborted);
  EXPECT_EQ(deletes, 0);  // And it did: the delete is gone.

  Transaction* again = manager_.Begin();
  Transaction* inner2 = manager_.Begin();
  TxnDeferDelete([&deletes] { ++deletes; });
  ASSERT_EQ(manager_.Commit(inner2), Status::kOk);
  ASSERT_EQ(manager_.Commit(again), Status::kOk);
  EXPECT_EQ(deletes, 1);  // Full commit chain: delete executed once.
}

TEST_F(TxnTest, DeferredDeleteWithoutTransactionRunsImmediately) {
  int deletes = 0;
  TxnDeferDelete([&deletes] { ++deletes; });
  EXPECT_EQ(deletes, 1);
}

TEST_F(TxnTest, FirstAbortReasonWins) {
  Transaction* txn = manager_.Begin();
  txn->RequestAbort(Status::kTxnLimitExceeded);
  txn->RequestAbort(Status::kTxnTimedOut);
  EXPECT_EQ(txn->abort_reason(), Status::kTxnLimitExceeded);
  manager_.Abort(txn, txn->abort_reason());
}

// --- Transaction recycling (the per-thread slab) -----------------------

TEST_F(TxnTest, BeginRecyclesTheLastFinishedTransaction) {
  Transaction* first = manager_.Begin();
  const uint64_t first_id = first->id();
  ASSERT_EQ(manager_.Commit(first), Status::kOk);
  // The slab is thread-local LIFO, so the very next Begin must hand back
  // the same object — that pointer identity IS the recycling.
  Transaction* second = manager_.Begin();
  EXPECT_EQ(second, first);
  EXPECT_NE(second->id(), first_id);  // ...under a fresh id.
  ASSERT_EQ(manager_.Commit(second), Status::kOk);
}

// Asserts every field a graft could observe is in just-constructed state.
void ExpectPristine(Transaction* txn) {
  EXPECT_EQ(txn->parent(), nullptr);
  EXPECT_EQ(txn->depth(), 0);
  EXPECT_EQ(txn->state(), TxnState::kActive);
  EXPECT_TRUE(txn->undo().empty());
  EXPECT_EQ(txn->undo().closure_count(), 0u);
  EXPECT_EQ(txn->lock_count(), 0u);
  EXPECT_EQ(txn->deferred_count(), 0u);
  EXPECT_FALSE(txn->abort_requested());
  EXPECT_EQ(txn->abort_reason(), Status::kTxnAborted);  // The default.
}

TEST_F(TxnTest, RecycledTransactionLeaksNothingAcrossReuse) {
  // Property test: run randomized commit/abort/nested-merge cycles that
  // dirty every piece of transaction state — inline undo records, closure
  // undo records, locks, deferred deletes, abort requests posted both
  // directly and via the thread's context — then assert the next Begin()
  // on this thread sees pristine state every time.
  Rng rng(0xdead5eed);
  TxnLock lock_a("recycle-a");
  TxnLock lock_b("recycle-b");
  uint64_t slot = 0;
  int deferred_runs = 0;

  for (int iter = 0; iter < 500; ++iter) {
    Transaction* txn = manager_.Begin();
    ExpectPristine(txn);

    const uint64_t dirt = rng.Next();
    if (dirt & 1) {
      TxnSet(&slot, rng.Next());  // Inline undo record.
    }
    if (dirt & 2) {
      TxnOnAbort([&slot] { slot = 0; });  // Closure undo record.
    }
    if (dirt & 4) {
      ASSERT_EQ(lock_a.Acquire(), Status::kOk);
      lock_a.Release();  // Deferred by 2PL until commit/abort.
    }
    if (dirt & 8) {
      TxnDeferDelete([&deferred_runs] { ++deferred_runs; });
    }
    if (dirt & 16) {
      // Nested child that merges its undo, lock, and deferred action up.
      Transaction* child = manager_.Begin();
      TxnSet(&slot, rng.Next());
      ASSERT_EQ(lock_b.Acquire(), Status::kOk);
      lock_b.Release();
      TxnDeferDelete([&deferred_runs] { ++deferred_runs; });
      ASSERT_EQ(manager_.Commit(child), Status::kOk);
    }
    if (dirt & 32) {
      txn->RequestAbort(Status::kTxnLimitExceeded);
    } else if (dirt & 64) {
      ASSERT_TRUE(KernelContext::PostAbortRequest(
          KernelContext::Current().os_id,
          static_cast<int32_t>(Status::kTxnTimedOut)));
    }

    if (dirt & 128) {
      manager_.Abort(txn, Status::kTxnAborted);
    } else {
      (void)manager_.Commit(txn);  // May turn into an abort; both fine.
    }

    ASSERT_FALSE(lock_a.held());
    ASSERT_FALSE(lock_b.held());
    ASSERT_EQ(TxnManager::Current(), nullptr);
  }

  // And one more beyond the loop, after every flavour of dirt has cycled
  // through the slab.
  Transaction* final_txn = manager_.Begin();
  ExpectPristine(final_txn);
  ASSERT_EQ(manager_.Commit(final_txn), Status::kOk);
}

TEST_F(TxnTest, RecyclingSurvivesDeepNestingBeyondSlabCap) {
  // 64 simultaneous transactions exceed the 32-deep slab cap on unwind;
  // the overflow path (plain delete) must coexist with recycling.
  std::vector<Transaction*> txns;
  for (int i = 0; i < 64; ++i) {
    txns.push_back(manager_.Begin());
  }
  for (int i = 63; i >= 0; --i) {
    ASSERT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  Transaction* txn = manager_.Begin();
  ExpectPristine(txn);
  ASSERT_EQ(manager_.Commit(txn), Status::kOk);
}

TEST_F(TxnTest, SlabMissAndOverflowCountsSurfaceInStats) {
  // The thread's slab holds at most kMaxSlabSize parked transactions (and
  // may start warm from earlier tests on this thread), so a 2x-cap-deep
  // nest must miss at least kMaxSlabSize times on the way down and overflow
  // at least kMaxSlabSize times on the way back up.
  constexpr int kDepth = static_cast<int>(TxnManager::kMaxSlabSize) * 2;
  std::vector<Transaction*> txns;
  for (int i = 0; i < kDepth; ++i) {
    txns.push_back(manager_.Begin());
  }
  for (int i = kDepth - 1; i >= 0; --i) {
    ASSERT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  TxnStats s = manager_.stats();
  EXPECT_GE(s.slab_misses, TxnManager::kMaxSlabSize);
  EXPECT_GE(s.slab_overflows, TxnManager::kMaxSlabSize);
  EXPECT_LE(s.slab_misses, static_cast<uint64_t>(kDepth));
  EXPECT_LE(s.slab_overflows, static_cast<uint64_t>(kDepth));

  // A shallow begin/commit cycle afterwards is served from the (now full)
  // slab: no new misses, no new overflows below the cap.
  const uint64_t misses_before = s.slab_misses;
  Transaction* txn = manager_.Begin();
  ASSERT_EQ(manager_.Commit(txn), Status::kOk);
  EXPECT_EQ(manager_.stats().slab_misses, misses_before);
}

TEST_F(TxnTest, DeepNestingBeyondSlabCapUndoesCorrectly) {
  // >cap nesting must degrade to heap fallback, not corruption or silent
  // abort: every level's write is tracked, a mid-chain abort undoes exactly
  // the merged-in suffix, and the survivors commit clean.
  constexpr int kDepth = static_cast<int>(TxnManager::kMaxSlabSize) + 16;
  constexpr int kAbortAt = static_cast<int>(TxnManager::kMaxSlabSize) + 4;
  std::vector<uint64_t> state(kDepth, 0);
  std::vector<Transaction*> txns;
  for (int i = 0; i < kDepth; ++i) {
    txns.push_back(manager_.Begin());
    TxnSet(&state[static_cast<size_t>(i)], uint64_t{1});
  }
  EXPECT_EQ(txns.back()->depth(), kDepth - 1);
  for (int i = kDepth - 1; i > kAbortAt; --i) {
    ASSERT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  manager_.Abort(txns[kAbortAt], Status::kTxnAborted);
  for (int i = kAbortAt - 1; i >= 0; --i) {
    ASSERT_EQ(manager_.Commit(txns[static_cast<size_t>(i)]), Status::kOk);
  }
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_EQ(state[static_cast<size_t>(i)], i < kAbortAt ? 1u : 0u) << i;
  }
}

}  // namespace
}  // namespace vino
