// Spool robustness: the format round-trips, and every way a spool file can
// be damaged — zero-length, bad header, truncated tail, flipped payload bit
// — yields a clean partial parse with a status, never a crash. Plus the
// SpoolDrainer end-to-end path and its adaptive cadence policy.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/base/trace.h"
#include "src/base/trace_spool.h"

namespace vino {
namespace {

trace::TaggedRecord MakeRecord(uint64_t seq, uint64_t os_id = 7) {
  trace::TaggedRecord tagged;
  tagged.record.time_ns = 1000 + seq;
  tagged.record.event = static_cast<uint16_t>(trace::Event::kLockAcquire);
  tagged.record.tag = 3;
  tagged.record.a32 = static_cast<uint32_t>(seq);
  tagged.record.a = seq;
  tagged.record.b = seq ^ 0xABCDu;
  tagged.os_id = os_id;
  tagged.seq = seq;
  return tagged;
}

class TraceSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "vino_spool_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(::getpid()) + ".bin";
    trace::ResetForTest();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    trace::SetEnabled(false);
    trace::ResetForTest();
  }
  std::string path_;
};

TEST_F(TraceSpoolTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(spool::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(spool::Crc32("", 0), 0u);
}

TEST_F(TraceSpoolTest, WriterReaderRoundTrip) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 10; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  writer.set_lost_total(5);
  ASSERT_EQ(writer.Commit(), Status::kOk);
  for (uint64_t i = 10; i < 13; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  writer.set_lost_total(9);
  ASSERT_EQ(writer.Close(), Status::kOk);
  EXPECT_EQ(writer.records_written(), 13u);
  EXPECT_EQ(writer.batches_written(), 3u);  // Two data batches + trailer.

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpool(path_, records, &stats), Status::kOk);
  ASSERT_EQ(records.size(), 13u);
  for (uint64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].os_id, 7u);
    EXPECT_EQ(records[i].record.a, i);
    EXPECT_EQ(records[i].record.b, i ^ 0xABCDu);
    EXPECT_EQ(records[i].record.time_ns, 1000 + i);
  }
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.corrupt_batches, 0u);
  EXPECT_EQ(stats.lost_total, 9u);  // The trailer carries the final counter.
  EXPECT_TRUE(stats.closed);
  EXPECT_FALSE(stats.truncated);
}

TEST_F(TraceSpoolTest, ZeroLengthFileIsCleanError) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  EXPECT_EQ(spool::ReadSpool(path_, records, &stats),
            Status::kSpoolTruncated);
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.batches, 0u);
}

TEST_F(TraceSpoolTest, BadFileHeaderIsCleanError) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "definitely not a spool header..";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  std::vector<trace::TaggedRecord> records;
  EXPECT_EQ(spool::ReadSpool(path_, records), Status::kSpoolCorrupt);
  EXPECT_TRUE(records.empty());
}

TEST_F(TraceSpoolTest, MissingFileIsCleanError) {
  std::vector<trace::TaggedRecord> records;
  EXPECT_EQ(spool::ReadSpool(path_ + ".nope", records), Status::kNotFound);
  EXPECT_TRUE(records.empty());
}

TEST_F(TraceSpoolTest, TruncatedTailYieldsCompleteBatchesOnly) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 6; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Commit(), Status::kOk);
  for (uint64_t i = 6; i < 10; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Close(), Status::kOk);
  const uint64_t full_bytes = writer.bytes_written();

  // Cut into the second data batch's payload: everything after the first
  // batch must be withheld, everything before it delivered.
  const uint64_t keep = sizeof(spool::FileHeader) +
                        sizeof(spool::BatchHeader) +
                        6 * sizeof(trace::TaggedRecord) +
                        sizeof(spool::BatchHeader) + 10;
  ASSERT_LT(keep, full_bytes);
  ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(keep)), 0);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  EXPECT_EQ(spool::ReadSpool(path_, records, &stats),
            Status::kSpoolTruncated);
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.back().seq, 5u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_FALSE(stats.closed);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.corrupt_batches, 0u);
}

TEST_F(TraceSpoolTest, CorruptBatchCrcIsSkippedNotFatal) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 4; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Commit(), Status::kOk);
  for (uint64_t i = 4; i < 9; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Close(), Status::kOk);

  // Flip one byte inside the FIRST batch's payload.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f,
                       static_cast<long>(sizeof(spool::FileHeader) +
                                         sizeof(spool::BatchHeader) + 5),
                       SEEK_SET),
            0);
  const uint8_t evil = 0xFF;
  ASSERT_EQ(std::fwrite(&evil, 1, 1, f), 1u);
  std::fclose(f);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  // One flipped bit costs one batch: the second batch and the trailer still
  // parse, and the overall status reports the corruption.
  EXPECT_EQ(spool::ReadSpool(path_, records, &stats), Status::kSpoolCorrupt);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().seq, 4u);
  EXPECT_EQ(stats.corrupt_batches, 1u);
  EXPECT_EQ(stats.batches, 2u);  // Second data batch + trailer.
  EXPECT_TRUE(stats.closed);
}

TEST_F(TraceSpoolTest, FollowerDeliversBatchesIncrementally) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 5; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Commit(), Status::kOk);

  spool::SpoolFollower follower;
  ASSERT_EQ(follower.Open(path_), Status::kOk);
  std::vector<trace::TaggedRecord> records;
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_FALSE(follower.closed());

  // Nothing new: a poll is a no-op, not an error.
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_EQ(records.size(), 5u);

  for (uint64_t i = 5; i < 8; ++i) {
    writer.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer.Close(), Status::kOk);
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_EQ(records.size(), 8u);
  EXPECT_TRUE(follower.closed());
  EXPECT_EQ(records.back().seq, 7u);
}

TEST_F(TraceSpoolTest, DrainerSpoolsPostedRecordsEndToEnd) {
  trace::SetEnabled(true);
  spool::SpoolDrainer::Options options;
  options.path = path_;
  auto started = spool::SpoolDrainer::Start(options);
  ASSERT_TRUE(started.ok());
  auto drainer = std::move(started.value());

  for (uint64_t i = 0; i < 100; ++i) {
    trace::Post(trace::Event::kResourceCharge, 0, 0, i, i * 2);
  }
  drainer->DrainNow();
  for (uint64_t i = 100; i < 150; ++i) {
    trace::Post(trace::Event::kResourceCharge, 0, 0, i, i * 2);
  }
  drainer->Stop();  // Final drain + trailer.

  const spool::SpoolDrainer::Stats stats = drainer->stats();
  EXPECT_EQ(stats.records, 150u);
  EXPECT_EQ(stats.lost_total, 0u);
  EXPECT_EQ(stats.writer_status, Status::kOk);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats read_stats;
  ASSERT_EQ(spool::ReadSpool(path_, records, &read_stats), Status::kOk);
  EXPECT_TRUE(read_stats.closed);
  ASSERT_EQ(records.size(), 150u);
  // Exactly-once, in per-thread order: seq is dense and the payload matches.
  for (uint64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].record.a, i);
    EXPECT_EQ(records[i].record.b, i * 2);
  }
}

TEST_F(TraceSpoolTest, DrainerReportsWrapLossInBatches) {
  trace::SetEnabled(true);
  spool::SpoolDrainer::Options options;
  options.path = path_;
  // The background thread must not drain before we wrap: park it at a huge
  // interval and drive drains by hand.
  options.min_interval_us = 10'000'000;
  options.max_interval_us = 10'000'000;
  auto started = spool::SpoolDrainer::Start(options);
  ASSERT_TRUE(started.ok());
  auto drainer = std::move(started.value());

  const uint64_t total = trace::kRingRecords + 500;
  for (uint64_t i = 0; i < total; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, i, 0);
  }
  drainer->Stop();

  EXPECT_GE(drainer->stats().lost_total, 500u);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats read_stats;
  ASSERT_EQ(spool::ReadSpool(path_, records, &read_stats), Status::kOk);
  // The spool says exactly how much history it is missing.
  EXPECT_GE(read_stats.lost_total, 500u);
  EXPECT_EQ(read_stats.records + read_stats.lost_total, total);
  // What survived is the most recent window, in order.
  EXPECT_EQ(records.back().record.a, total - 1);
}

TEST_F(TraceSpoolTest, DrainerCadenceAdaptsToOccupancy) {
  trace::SetEnabled(true);
  spool::SpoolDrainer::Options options;
  options.path = path_;
  // Intervals long enough that the background thread never drains on its
  // own during the test: every adaptation step below is ours.
  options.min_interval_us = 10'000'000;
  options.max_interval_us = 80'000'000;
  auto started = spool::SpoolDrainer::Start(options);
  ASSERT_TRUE(started.ok());
  auto drainer = std::move(started.value());

  // Idle rings: each drain doubles the sleep until it parks at max.
  drainer->DrainNow();
  drainer->DrainNow();
  drainer->DrainNow();
  drainer->DrainNow();
  EXPECT_EQ(drainer->stats().interval_us, 80'000'000u);

  // A burst past the hot threshold (≥ 50% of ring capacity pending) makes
  // the next drain halve the sleep again.
  for (uint64_t i = 0; i < trace::kRingRecords * 3 / 4; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, i, 0);
  }
  drainer->DrainNow();
  EXPECT_EQ(drainer->stats().interval_us, 40'000'000u);
  EXPECT_GE(drainer->stats().last_occupancy_permille, 500u);
  drainer->Stop();
}

TEST_F(TraceSpoolTest, StartRejectsBadOptions) {
  spool::SpoolDrainer::Options options;  // Empty path.
  EXPECT_FALSE(spool::SpoolDrainer::Start(options).ok());
  options.path = "/nonexistent-dir-xyz/spool.bin";
  EXPECT_FALSE(spool::SpoolDrainer::Start(options).ok());
  options.path = path_;
  options.min_interval_us = 0;
  EXPECT_FALSE(spool::SpoolDrainer::Start(options).ok());
}

// ---------------------------------------------------------------------------
// Rotation: size-capped segment rings.

class SpoolRotationTest : public TraceSpoolTest {
 protected:
  void TearDown() override {
    for (const uint64_t index : spool::ListSegments(path_)) {
      std::remove(spool::SegmentPath(path_, index).c_str());
    }
    TraceSpoolTest::TearDown();
  }
};

TEST_F(SpoolRotationTest, SegmentPathsRoundTripAndRejectPlainSpools) {
  const std::string path = spool::SegmentPath("/tmp/x/vspool.12.0", 7);
  EXPECT_EQ(path, "/tmp/x/vspool.12.0.s7.bin");
  std::string base;
  uint64_t index = 0;
  ASSERT_TRUE(spool::ParseSegmentPath(path, &base, &index));
  EXPECT_EQ(base, "/tmp/x/vspool.12.0");
  EXPECT_EQ(index, 7u);
  // A kernel's single-file spool has trailing dot-fields but no `.s` infix:
  // it must never parse as a segment of some other stream.
  EXPECT_FALSE(spool::ParseSegmentPath("/tmp/x/vspool.12.0.bin", &base,
                                       &index));
  EXPECT_FALSE(spool::ParseSegmentPath("/tmp/x/vspool.12.0.sX.bin", &base,
                                       &index));
  EXPECT_FALSE(spool::ParseSegmentPath("/tmp/x/vspool.12.0.s3", &base,
                                       &index));
}

TEST_F(SpoolRotationTest, RotatingWriterChainsLosslesslyAcrossSegments) {
  spool::SpoolWriter writer;
  // Rotate after every batch (any nonzero byte count exceeds a 1-byte cap);
  // keep everything.
  ASSERT_EQ(writer.OpenRotating(path_, {1, 100}), Status::kOk);
  uint64_t seq = 0;
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 4; ++i) {
      writer.OnRecord(MakeRecord(seq++));
    }
    writer.set_lost_total(static_cast<uint64_t>(batch));  // Stream property.
    ASSERT_EQ(writer.Commit(), Status::kOk);
  }
  ASSERT_EQ(writer.Close(), Status::kOk);
  EXPECT_GE(writer.segments_created(), 5u);
  EXPECT_EQ(writer.segments_reclaimed(), 0u);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpoolChain(path_, records, &stats), Status::kOk);
  // Every record survives the segment boundaries, in order.
  ASSERT_EQ(records.size(), 20u);
  for (uint64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
  }
  // batch_seq / lost_total are stream state: continuous across segments.
  EXPECT_TRUE(stats.closed);
  EXPECT_EQ(stats.first_batch_seq, 0u);
  EXPECT_EQ(stats.seq_gaps, 0u);
  EXPECT_EQ(stats.lost_total, 4u);
  EXPECT_GE(stats.segments, 5u);
  EXPECT_EQ(stats.corrupt_batches, 0u);
}

TEST_F(SpoolRotationTest, CapReclaimsOldestSegmentAndReaderReportsIt) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.OpenRotating(path_, {1, 2}), Status::kOk);  // Keep 2.
  uint64_t seq = 0;
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 3; ++i) {
      writer.OnRecord(MakeRecord(seq++));
    }
    ASSERT_EQ(writer.Commit(), Status::kOk);
  }
  ASSERT_EQ(writer.Close(), Status::kOk);
  EXPECT_GT(writer.segments_reclaimed(), 0u);

  // Only the capped live window remains on disk.
  const std::vector<uint64_t> segments = spool::ListSegments(path_);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments.front(), writer.first_segment());

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpoolChain(path_, records, &stats), Status::kOk);
  // The reader gets the most recent suffix and *says* how it starts
  // mid-stream — a reclaimed front is reported, never a silent hole.
  EXPECT_TRUE(stats.closed);
  EXPECT_GT(stats.first_batch_seq, 0u);
  EXPECT_EQ(stats.seq_gaps, 0u);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().seq, 17u);  // The newest record survives.
  EXPECT_EQ(records.size() % 3, 0u);   // Whole batches only.
}

TEST_F(SpoolRotationTest, ChainedFollowerTailsAcrossLiveRotation) {
  spool::SpoolWriter writer;
  ASSERT_EQ(writer.OpenRotating(path_, {1, 100}), Status::kOk);

  spool::ChainedFollower follower;
  std::vector<trace::TaggedRecord> records;
  uint64_t seq = 0;
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 2; ++i) {
      writer.OnRecord(MakeRecord(seq++));
    }
    ASSERT_EQ(writer.Commit(), Status::kOk);
    // Interleaved tailing: each poll must cross the rotation the writer
    // just performed.
    if (batch == 0) {
      ASSERT_EQ(follower.Open(path_), Status::kOk);
    }
    ASSERT_EQ(follower.Poll(records), Status::kOk);
    EXPECT_EQ(records.size(), (static_cast<size_t>(batch) + 1) * 2);
    EXPECT_FALSE(follower.closed());
  }
  ASSERT_EQ(writer.Close(), Status::kOk);
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_TRUE(follower.closed());
  ASSERT_EQ(records.size(), 8u);
  for (uint64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
  }
  EXPECT_EQ(follower.stats().seq_gaps, 0u);
  EXPECT_GE(follower.stats().segments, 4u);
}

TEST_F(SpoolRotationTest, ChainedFollowerOpenIsRetryableBeforeFirstData) {
  // Tailing a kernel that has not started yet: Open keeps failing softly
  // until the first segment's header lands, then succeeds — it must never
  // wedge into kAlreadyExists (the fleet attach loop retries it).
  spool::ChainedFollower follower;
  EXPECT_EQ(follower.Open(path_), Status::kNotFound);
  EXPECT_EQ(follower.Open(path_), Status::kNotFound);

  spool::SpoolWriter writer;
  ASSERT_EQ(writer.OpenRotating(path_, {1, 100}), Status::kOk);
  writer.OnRecord(MakeRecord(0));
  ASSERT_EQ(writer.Commit(), Status::kOk);
  ASSERT_EQ(follower.Open(path_), Status::kOk);
  std::vector<trace::TaggedRecord> records;
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_EQ(records.size(), 1u);
  ASSERT_EQ(writer.Close(), Status::kOk);
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_TRUE(follower.closed());
}

TEST_F(SpoolRotationTest, FollowerReopensWhenFileRotatedAwayUnderneath) {
  // The --follow regression: a *plain* spool renamed away mid-tail (think
  // logrotate) used to park the reader on its stale fd forever. The chain
  // reader notices the displacement, finishes the old incarnation, and
  // re-reads the new file; the restarted stream's batch_seq reset is
  // reported as a sequence gap, not silently merged.
  spool::SpoolWriter writer1;
  ASSERT_EQ(writer1.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 4; ++i) {
    writer1.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer1.Commit(), Status::kOk);
  ASSERT_EQ(writer1.Commit(), Status::kOk);  // No-op, keeps file unclosed.

  spool::ChainedFollower follower;
  ASSERT_EQ(follower.Open(path_), Status::kOk);
  std::vector<trace::TaggedRecord> records;
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  ASSERT_EQ(records.size(), 4u);

  // Rotate the file away and start a new stream at the same path.
  const std::string moved = path_ + ".old";
  ASSERT_EQ(std::rename(path_.c_str(), moved.c_str()), 0);
  spool::SpoolWriter writer2;
  ASSERT_EQ(writer2.Open(path_), Status::kOk);
  for (uint64_t i = 100; i < 103; ++i) {
    writer2.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer2.Close(), Status::kOk);

  // One poll cycle: detect displacement, fold, reopen, drain the new file.
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_TRUE(follower.closed());
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[4].seq, 100u);
  EXPECT_GE(follower.stats().seq_gaps, 1u);  // The seq-0 restart.
  std::remove(moved.c_str());
}

TEST_F(SpoolRotationTest, FollowerReopensWhenFileTruncatedUnderneath) {
  spool::SpoolWriter writer1;
  ASSERT_EQ(writer1.Open(path_), Status::kOk);
  for (uint64_t i = 0; i < 5; ++i) {
    writer1.OnRecord(MakeRecord(i));
  }
  ASSERT_EQ(writer1.Commit(), Status::kOk);

  spool::ChainedFollower follower;
  ASSERT_EQ(follower.Open(path_), Status::kOk);
  std::vector<trace::TaggedRecord> records;
  ASSERT_EQ(follower.Poll(records), Status::kOk);
  ASSERT_EQ(records.size(), 5u);

  // A restarted writer truncates the same path (same inode, shorter file):
  // st_size < consumed offset is the displacement signal.
  spool::SpoolWriter writer2;
  ASSERT_EQ(writer2.Open(path_), Status::kOk);
  writer2.OnRecord(MakeRecord(200));
  ASSERT_EQ(writer2.Close(), Status::kOk);

  ASSERT_EQ(follower.Poll(records), Status::kOk);
  EXPECT_TRUE(follower.closed());
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.back().seq, 200u);
}

TEST_F(SpoolRotationTest, DrainerRotatesAndAccountingStaysLossless) {
  // Drainer-vs-writers stress under forced rotation (TSan covers this test
  // via tools/check.sh): everything posted is either delivered through the
  // segment chain or counted in lost_total — never silently dropped at a
  // segment boundary.
  trace::SetEnabled(true);
  spool::SpoolDrainer::Options options;
  options.path = path_;
  options.rotation.segment_bytes = 16 * 1024;  // Force frequent rotation.
  options.rotation.max_segments = 1000;        // ...but reclaim nothing.
  auto started = spool::SpoolDrainer::Start(options);
  ASSERT_TRUE(started.ok());
  auto drainer = std::move(started.value());

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trace::Post(trace::Event::kResourceCharge,
                    static_cast<uint16_t>(t), 0, i, i);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  drainer->Stop();

  const spool::SpoolDrainer::Stats ds = drainer->stats();
  EXPECT_GT(ds.segments, 1u);
  EXPECT_EQ(ds.segments_reclaimed, 0u);

  std::vector<trace::TaggedRecord> records;
  spool::ReadStats stats;
  ASSERT_EQ(spool::ReadSpoolChain(path_, records, &stats), Status::kOk);
  EXPECT_TRUE(stats.closed);
  EXPECT_EQ(stats.seq_gaps, 0u);
  EXPECT_EQ(stats.first_batch_seq, 0u);
  EXPECT_GT(stats.segments, 1u);
  // The lossless ledger: delivered + lost == posted.
  EXPECT_EQ(stats.records + stats.lost_total, kThreads * kPerThread);
  EXPECT_EQ(records.size(), stats.records);
}

TEST_F(SpoolRotationTest, EnvRotationKnobsDeriveSegmentedOptions) {
  // DeriveEnvSpoolOptions honors the rotation knobs; explicit paths win
  // over VINO_SPOOL but still pick up the segment configuration.
  // (check.sh runs the whole suite with VINO_SPOOL set — park it.)
  const char* spool_dir = std::getenv("VINO_SPOOL");
  const std::string saved = spool_dir != nullptr ? spool_dir : "";
  ::unsetenv("VINO_SPOOL");
  ::setenv("VINO_SPOOL_SEGMENT_BYTES", "4096", 1);
  ::setenv("VINO_SPOOL_SEGMENTS", "3", 1);
  spool::SpoolDrainer::Options options;
  options.path = path_;
  EXPECT_TRUE(spool::DeriveEnvSpoolOptions(&options));
  EXPECT_EQ(options.path, path_);
  EXPECT_EQ(options.rotation.segment_bytes, 4096u);
  EXPECT_EQ(options.rotation.max_segments, 3u);
  ::unsetenv("VINO_SPOOL_SEGMENT_BYTES");
  ::unsetenv("VINO_SPOOL_SEGMENTS");

  spool::SpoolDrainer::Options plain;
  EXPECT_FALSE(spool::DeriveEnvSpoolOptions(&plain));  // No env, no path.
  if (spool_dir != nullptr) {
    ::setenv("VINO_SPOOL", saved.c_str(), 1);
  }
}

}  // namespace
}  // namespace vino
