// Unit tests for src/base: Status/Result, clocks, stats, hash, rng,
// intrusive list.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/hash.h"
#include "src/base/intrusive_list.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"

namespace vino {
namespace {

TEST(StatusTest, NamesAreStable) {
  EXPECT_EQ(StatusName(Status::kOk), "OK");
  EXPECT_EQ(StatusName(Status::kTxnAborted), "TXN_ABORTED");
  EXPECT_EQ(StatusName(Status::kBadSignature), "BAD_SIGNATURE");
  EXPECT_EQ(StatusName(Status::kSfiTrap), "SFI_TRAP");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.status(), Status::kOk);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::kNotFound;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
  clock.Set(10);
  EXPECT_EQ(clock.NowMicros(), 10u);
}

TEST(ClockTest, SteadyClockMonotonic) {
  SteadyClock& clock = SteadyClock::Instance();
  const Micros a = clock.NowMicros();
  const Micros b = clock.NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, CycleCounterAdvances) {
  const uint64_t a = ReadCycleCounter();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  const uint64_t b = ReadCycleCounter();
  EXPECT_GT(b, a);
}

TEST(ClockTest, CyclesPerMicroPlausible) {
  const double cpm = CyclesPerMicro();
  // Any host we run on clocks between 100 MHz and 10 GHz.
  EXPECT_GT(cpm, 100.0);
  EXPECT_LT(cpm, 10000.0);
}

TEST(StatsTest, EmptyInput) {
  const TrimmedStats s = ComputeTrimmedStats({});
  EXPECT_EQ(s.samples_total, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleSample) {
  const TrimmedStats s = ComputeTrimmedStats({5.0});
  EXPECT_EQ(s.samples_used, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, TrimsTopAndBottomTenPercent) {
  // 10 samples: one huge outlier at each end must be dropped.
  std::vector<double> samples = {1000.0, 5, 5, 5, 5, 5, 5, 5, 5, -1000.0};
  const TrimmedStats s = ComputeTrimmedStats(samples);
  EXPECT_EQ(s.samples_used, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, MeanAndStddev) {
  const TrimmedStats s = ComputeTrimmedStats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0},
                                             /*trim_fraction=*/0.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // Sample stddev.
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StatsTest, SampleSetAccumulates) {
  SampleSet set;
  for (int i = 0; i < 100; ++i) {
    set.Add(static_cast<double>(i));
  }
  EXPECT_EQ(set.size(), 100u);
  const TrimmedStats s = set.Trimmed();
  EXPECT_EQ(s.samples_used, 80u);
  EXPECT_DOUBLE_EQ(s.mean, 49.5);  // Symmetric trim preserves the mean.
}

TEST(HashTest, Fnv1aKnownVector) {
  // FNV-1a("") = offset basis.
  EXPECT_EQ(Fnv1a("", 0), 0xcbf29ce484222325ull);
  // FNV-1a("a") per reference implementation.
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(HashTest, MixU64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = MixU64(0x1234);
  const uint64_t b = MixU64(0x1235);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All of 3, 4, 5 hit in 1000 draws.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

struct TestItem : ListNode {
  explicit TestItem(int v) : value(v) {}
  int value;
};

TEST(IntrusiveListTest, PushPopOrder) {
  IntrusiveList<TestItem> list;
  TestItem a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  IntrusiveList<TestItem> list;
  TestItem a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Front()->value, 1);
  EXPECT_EQ(list.Back()->value, 3);
  EXPECT_FALSE(b.linked());
}

TEST(IntrusiveListTest, ReplaceSwapsPosition) {
  // The Cao-replacement primitive: `in` takes `out`'s queue position.
  IntrusiveList<TestItem> list;
  TestItem a(1), b(2), c(3), d(4);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Replace(&b, &d);
  EXPECT_FALSE(b.linked());
  std::vector<int> order;
  for (TestItem& item : list) {
    order.push_back(item.value);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 4, 3}));
}

TEST(IntrusiveListTest, Iteration) {
  // Items must outlive the list (intrusive-container contract), so they are
  // declared first.
  std::vector<TestItem> items;
  IntrusiveList<TestItem> list;
  items.reserve(10);
  for (int i = 0; i < 10; ++i) {
    items.emplace_back(i);
  }
  for (auto& item : items) {
    list.PushBack(&item);
  }
  int expected = 0;
  for (TestItem& item : list) {
    EXPECT_EQ(item.value, expected++);
  }
  EXPECT_EQ(expected, 10);
}

}  // namespace
}  // namespace vino
