// Flight-recorder tests: ring semantics (wrap-around, drop accounting),
// snapshot/merge ordering, torn-record immunity under concurrent writers
// (run under TSan by tools/check.sh), enable/disable races, and the
// histogram + abort-cost-model math the recorder exports.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/base/context.h"
#include "src/base/histogram.h"
#include "src/base/trace.h"

namespace vino {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::ResetForTest();
    trace::SetEnabled(true);
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::ResetForTest();
  }
};

TEST_F(TraceTest, PostAndSnapshotRoundTrip) {
  trace::Post(trace::Event::kTxnBegin, 0, 7, 100, 0);
  trace::Post(trace::Event::kTxnCommit, 0, 2, 100, 5);
  trace::SnapshotStats stats;
  const auto records = trace::Snapshot(&stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rings, 1u);

  EXPECT_EQ(static_cast<trace::Event>(records[0].record.event),
            trace::Event::kTxnBegin);
  EXPECT_EQ(records[0].record.a32, 7u);
  EXPECT_EQ(records[0].record.a, 100u);
  EXPECT_EQ(records[0].os_id, KernelContext::Current().os_id);
  EXPECT_EQ(records[0].seq, 0u);

  EXPECT_EQ(static_cast<trace::Event>(records[1].record.event),
            trace::Event::kTxnCommit);
  EXPECT_EQ(records[1].record.b, 5u);
  EXPECT_EQ(records[1].seq, 1u);
  // One writer, monotonic clock: time-ordered.
  EXPECT_LE(records[0].record.time_ns, records[1].record.time_ns);
}

TEST_F(TraceTest, WrapAroundKeepsMostRecentAndCountsDrops) {
  const uint64_t total = trace::kRingRecords + 100;
  for (uint64_t i = 0; i < total; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, i, 0);
  }
  trace::SnapshotStats stats;
  const auto records = trace::Snapshot(&stats);
  // A wrapped ring yields capacity - 1 records: the oldest in-window slot
  // is the one a concurrent writer would be overwriting, and a reader
  // cannot prove it was not, so it is conservatively dropped.
  ASSERT_EQ(records.size(), trace::kRingRecords - 1);
  EXPECT_EQ(stats.dropped, 101u);
  // The survivors are the most recent posts, oldest first.
  EXPECT_EQ(records.front().record.a, 101u);
  EXPECT_EQ(records.front().seq, 101u);
  EXPECT_EQ(records.back().record.a, total - 1);
  // The monotonic wrap counter reports total overwritten history, derived
  // from head, so it is exact (unlike `dropped`, which conservatively adds
  // the one unprovable slot).
  EXPECT_EQ(stats.overwritten, 100u);

  // And it only grows: more wrapping, bigger counter — a later consumer can
  // always tell how much of the ring's life it missed.
  for (uint64_t i = 0; i < 50; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, total + i, 0);
  }
  trace::SnapshotStats after;
  (void)trace::Snapshot(&after);
  EXPECT_EQ(after.overwritten, 150u);
}

TEST_F(TraceTest, EventAndPathTagNamesAreStable) {
  EXPECT_EQ(trace::EventName(trace::Event::kInvokeBegin), "invoke-begin");
  EXPECT_EQ(trace::EventName(trace::Event::kPoolSaturated), "pool-saturated");
  EXPECT_EQ(trace::PathTagName(trace::PathTag::kNull), "null");
  EXPECT_EQ(trace::PathTagName(trace::PathTag::kAbort), "abort");
}

TEST_F(TraceTest, DrainDeliversThroughSink) {
  trace::Post(trace::Event::kWatchdogFire, 0, 0, 1, 2);
  trace::Post(trace::Event::kGraftEjected, 0, 0, 3, 4);
  struct Collector : trace::TraceSink {
    std::vector<trace::TaggedRecord> got;
    void OnRecord(const trace::TaggedRecord& r) override { got.push_back(r); }
  } sink;
  const trace::SnapshotStats stats = trace::Drain(sink);
  EXPECT_EQ(stats.records, 2u);
  ASSERT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(static_cast<trace::Event>(sink.got[1].record.event),
            trace::Event::kGraftEjected);
}

TEST_F(TraceTest, ResetForTestForgetsHistory) {
  trace::Post(trace::Event::kTxnBegin, 0, 0, 1, 0);
  trace::ResetForTest();
  trace::SnapshotStats stats;
  EXPECT_TRUE(trace::Snapshot(&stats).empty());
  EXPECT_EQ(stats.rings, 0u);
  // A post after reset lands in a fresh ring (the cached thread-local ring
  // pointer must notice the generation bump).
  trace::Post(trace::Event::kTxnBegin, 0, 0, 2, 0);
  const auto records = trace::Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.a, 2u);
  EXPECT_EQ(records[0].seq, 0u);
}

// The core lock-free claim: records delivered by a snapshot taken while
// writers are mid-post are never torn. Every writer stamps each record with
// a == its sequence number and b == a XOR a per-thread magic; a torn record
// (words from two different posts) fails the invariant.
TEST_F(TraceTest, MultiWriterSnapshotDuringWriteDeliversNoTornRecords) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPostsPerWriter = 3 * trace::kRingRecords;  // Wraps.
  std::atomic<int> writers_done{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &writers_done] {
      const uint64_t magic = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      for (uint64_t i = 0; i < kPostsPerWriter; ++i) {
        trace::Post(trace::Event::kLockAcquire,
                    static_cast<uint16_t>(w), static_cast<uint32_t>(w), i,
                    i ^ magic);
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Snapshot continuously while the writers hammer their rings.
  uint64_t snapshots = 0;
  uint64_t checked = 0;
  while (writers_done.load(std::memory_order_acquire) < kWriters) {
    trace::SnapshotStats stats;
    const auto records = trace::Snapshot(&stats);
    ++snapshots;
    for (const auto& r : records) {
      if (static_cast<trace::Event>(r.record.event) !=
          trace::Event::kLockAcquire) {
        continue;  // A stray record from the harness thread.
      }
      const int w = static_cast<int>(r.record.tag);
      ASSERT_LT(w, kWriters);
      const uint64_t magic =
          0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      ASSERT_EQ(r.record.b, r.record.a ^ magic)
          << "torn record delivered: writer " << w << " seq " << r.seq;
      ++checked;
    }
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_GT(snapshots, 0u);

  // Quiescent now: the final snapshot sees each writer's full recent window,
  // untorn and in per-thread seq order.
  const auto records = trace::Snapshot();
  uint64_t last_seq[kWriters];
  bool seen[kWriters] = {};
  for (const auto& r : records) {
    if (static_cast<trace::Event>(r.record.event) !=
        trace::Event::kLockAcquire) {
      continue;
    }
    const int w = static_cast<int>(r.record.tag);
    ASSERT_LT(w, kWriters);
    const uint64_t magic = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
    ASSERT_EQ(r.record.b, r.record.a ^ magic);
    ++checked;
    if (seen[w]) {
      EXPECT_GT(r.seq, last_seq[w]) << "per-writer seq must be monotonic";
    }
    seen[w] = true;
    last_seq[w] = r.seq;
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------------
// Incremental drain (DrainCursor) — the spool drainer's read side.

struct CursorCollector : trace::TraceSink {
  std::vector<trace::TaggedRecord> got;
  void OnRecord(const trace::TaggedRecord& r) override { got.push_back(r); }
};

TEST_F(TraceTest, DrainCursorDeliversEachRecordExactlyOnce) {
  trace::DrainCursor cursor;
  CursorCollector sink;

  trace::Post(trace::Event::kTxnBegin, 0, 0, 1, 0);
  trace::Post(trace::Event::kTxnCommit, 0, 0, 1, 0);
  trace::DrainCursor::Stats stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.lost, 0u);
  ASSERT_EQ(sink.got.size(), 2u);

  // Nothing new: a second drain is empty, not a re-delivery.
  stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(sink.got.size(), 2u);

  trace::Post(trace::Event::kTxnAbort, 0, 0, 2, 0);
  stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, 1u);
  ASSERT_EQ(sink.got.size(), 3u);
  // Per-thread seq is dense across drains: exactly-once, in order.
  for (uint64_t i = 0; i < sink.got.size(); ++i) {
    EXPECT_EQ(sink.got[i].seq, i);
  }
}

TEST_F(TraceTest, DrainCursorAccountsWrapLossBetweenDrains) {
  trace::DrainCursor cursor;
  CursorCollector sink;

  // The cursor arrives after the ring has already wrapped: everything it
  // missed is counted, nothing is fabricated.
  const uint64_t total = trace::kRingRecords + 500;
  for (uint64_t i = 0; i < total; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, i, 0);
  }
  trace::DrainCursor::Stats stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, trace::kRingRecords - 1);
  EXPECT_EQ(stats.lost, 501u);  // 500 wrapped + the unprovable oldest slot.
  EXPECT_EQ(stats.records + stats.lost, total);
  EXPECT_EQ(sink.got.back().record.a, total - 1);

  // Once it is keeping up, no further loss — and lost_total stays put.
  for (uint64_t i = 0; i < 10; ++i) {
    trace::Post(trace::Event::kLockAcquire, 0, 0, total + i, 0);
  }
  stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(stats.lost, 0u);
  EXPECT_EQ(stats.lost_total, 501u);
}

TEST_F(TraceTest, DrainCursorSurvivesResetForTest) {
  trace::DrainCursor cursor;
  CursorCollector sink;
  trace::Post(trace::Event::kTxnBegin, 0, 0, 1, 0);
  (void)cursor.DrainInto(sink);
  ASSERT_EQ(sink.got.size(), 1u);

  trace::ResetForTest();  // Generation bump: stale positions are forgotten.
  trace::Post(trace::Event::kTxnBegin, 0, 0, 2, 0);
  const trace::DrainCursor::Stats stats = cursor.DrainInto(sink);
  EXPECT_EQ(stats.records, 1u);
  ASSERT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(sink.got.back().record.a, 2u);
  EXPECT_EQ(sink.got.back().seq, 0u);  // Fresh ring, fresh stream.
}

// The satellite stress test (run under TSan by tools/check.sh): a drainer
// continuously draining while writer threads hammer their rings. Delivered
// records must be untorn (b == a XOR per-writer magic) and each writer's
// stream must arrive with strictly monotonic seq — exactly-once, no
// duplicates, no reordering within a thread.
TEST_F(TraceTest, DrainCursorVersusWritersDeliversUntornMonotonicStreams) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPostsPerWriter = 3 * trace::kRingRecords;  // Wraps.
  std::atomic<int> writers_done{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &writers_done] {
      const uint64_t magic =
          0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      for (uint64_t i = 0; i < kPostsPerWriter; ++i) {
        trace::Post(trace::Event::kLockAcquire,
                    static_cast<uint16_t>(w), static_cast<uint32_t>(w), i,
                    i ^ magic);
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  trace::DrainCursor cursor;
  CursorCollector sink;
  uint64_t drains = 0;
  while (writers_done.load(std::memory_order_acquire) < kWriters) {
    (void)cursor.DrainInto(sink);
    ++drains;
  }
  for (auto& t : writers) {
    t.join();
  }
  const trace::DrainCursor::Stats final_stats = cursor.DrainInto(sink);
  EXPECT_GT(drains, 0u);

  uint64_t last_seq[kWriters];
  bool seen[kWriters] = {};
  uint64_t delivered[kWriters] = {};
  for (const auto& r : sink.got) {
    if (static_cast<trace::Event>(r.record.event) !=
        trace::Event::kLockAcquire) {
      continue;  // A stray record from the harness thread.
    }
    const int w = static_cast<int>(r.record.tag);
    ASSERT_LT(w, kWriters);
    const uint64_t magic = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
    ASSERT_EQ(r.record.b, r.record.a ^ magic)
        << "torn record delivered: writer " << w << " seq " << r.seq;
    // Each writer posts only these records on a fresh thread, so its ring
    // seq IS the post index.
    ASSERT_EQ(r.record.a, r.seq);
    if (seen[w]) {
      ASSERT_GT(r.seq, last_seq[w]) << "duplicate or reordered delivery";
    }
    seen[w] = true;
    last_seq[w] = r.seq;
    ++delivered[w];
  }
  // Exactly-once bookkeeping: per writer, delivered + lost == posted. The
  // split depends on drain/writer timing; the sum must not.
  uint64_t total_delivered = 0;
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(seen[w]) << "writer " << w << " vanished from the drain";
    EXPECT_EQ(last_seq[w], kPostsPerWriter - 1)
        << "writer " << w << "'s final record must always be delivered";
    total_delivered += delivered[w];
  }
  EXPECT_EQ(total_delivered + final_stats.lost_total,
            static_cast<uint64_t>(kWriters) * kPostsPerWriter);
}

// Toggling the enable flag while writers post must be race-free; a site that
// narrowly misses a toggle just posts (or skips) one event.
TEST_F(TraceTest, EnableDisableRacesAreBenign) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        VINO_TRACE(trace::Event::kResourceCharge, 0, 0, i, i);
        ++i;
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    trace::SetEnabled(i % 2 == 0);
    if (i % 64 == 0) {
      (void)trace::Snapshot();
    }
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
  trace::SetEnabled(true);
  (void)trace::Snapshot();  // Still coherent.
}

// ---------------------------------------------------------------------------
// Histogram.

TEST(LatencyHistogramTest, BucketsAndQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileNs(0.5), 0u);

  // 90 fast ops (~100 ns), 9 medium (~10 µs), 1 slow (~1 ms).
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 9; ++i) h.Record(10'000);
  h.Record(1'000'000);

  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.SumNs(), 90u * 100 + 9u * 10'000 + 1'000'000);
  // Quantiles are bucket upper bounds: 100 -> [64,127], 10000 -> [8192,16383],
  // 1000000 -> [524288,1048575].
  EXPECT_EQ(h.QuantileNs(0.50), 127u);
  EXPECT_EQ(h.QuantileNs(0.95), 16'383u);
  EXPECT_EQ(h.QuantileNs(0.999), 1'048'575u);

  uint64_t buckets[kHistogramBuckets];
  h.ReadBuckets(buckets);
  EXPECT_EQ(buckets[LatencyHistogram::Bucket(100)], 90u);
  EXPECT_EQ(buckets[LatencyHistogram::Bucket(10'000)], 9u);
  EXPECT_EQ(buckets[LatencyHistogram::Bucket(1'000'000)], 1u);
}

TEST(LatencyHistogramTest, ZeroAndHugeDurationsLandInEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(LatencyHistogram::Bucket(0), 0u);
  EXPECT_EQ(LatencyHistogram::Bucket(~uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(h.QuantileNs(0.0), 0u);
}

// ---------------------------------------------------------------------------
// Abort-cost model.

TEST(AbortCostModelTest, RecoversSyntheticPlane) {
  // cost = 35 µs + 10 µs · L + 0.5 µs · G, exactly (paper §4.5's measured
  // shape). With exact integer samples the normal equations are exact.
  AbortCostModel model;
  for (uint64_t l = 0; l <= 4; ++l) {
    for (uint64_t g = 0; g <= 8; g += 2) {
      model.Record(l, g, 35'000 + 10'000 * l + 500 * g);
    }
  }
  const auto fit = model.Fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_EQ(fit.samples, 25u);
  EXPECT_NEAR(fit.a_ns, 35'000.0, 1.0);
  EXPECT_NEAR(fit.b_ns, 10'000.0, 1.0);
  EXPECT_NEAR(fit.c_ns, 500.0, 1.0);
  EXPECT_NEAR(fit.mean_locks, 2.0, 1e-9);
  EXPECT_NEAR(fit.mean_undo, 4.0, 1e-9);
}

TEST(AbortCostModelTest, DegeneratePredictorsPinToZero) {
  // Every sample has L == 0 and G == 0: the lock and undo columns carry no
  // information, so their coefficients must be zero, not garbage.
  AbortCostModel model;
  for (int i = 0; i < 10; ++i) {
    model.Record(0, 0, 42'000);
  }
  const auto fit = model.Fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.a_ns, 42'000.0, 1.0);
  EXPECT_EQ(fit.b_ns, 0.0);
  EXPECT_EQ(fit.c_ns, 0.0);
}

TEST(AbortCostModelTest, EmptyModelIsInvalid) {
  AbortCostModel model;
  EXPECT_FALSE(model.Fit().valid);
  EXPECT_EQ(model.samples(), 0u);
}

TEST(AbortCostModelTest, ConstantUndoStillFitsLocks) {
  // G never varies: c pins to zero, a and b still recoverable.
  AbortCostModel model;
  for (uint64_t l = 0; l <= 6; ++l) {
    model.Record(l, 3, 20'000 + 5'000 * l);
  }
  const auto fit = model.Fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b_ns, 5'000.0, 1.0);
}

}  // namespace
}  // namespace vino
