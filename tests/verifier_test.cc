// Load-time sandbox verifier tests (src/sfi/verifier.h).
//
// The threat model: the MiSFIT instrumenter and the signing pipeline are
// compromised, so "instrumented" programs arrive with any instruction
// stream and any manifest. The verifier must re-prove the sandbox
// invariants from the code alone — accepting everything the real
// instrumenter emits while rejecting forgeries that the old
// trust-the-manifest loader waved through.

#include <gtest/gtest.h>

#include <vector>

#include "src/sfi/assembler.h"
#include "src/sfi/host.h"
#include "src/sfi/isa.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/misfit.h"
#include "src/sfi/verifier.h"
#include "src/sfi/vm.h"

namespace vino {
namespace {

constexpr uint32_t kArenaLog2 = 16;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() {
    callable_id_ = host_.Register(
        "k.ok", [](HostCallContext&) -> Result<uint64_t> { return 7ull; },
        true);
    internal_id_ = host_.Register(
        "k.secret", [](HostCallContext&) -> Result<uint64_t> { return 13ull; },
        false);
  }

  // A hand-built "instrumented" program: what a forged toolchain produces.
  static Program Forged(std::vector<Instruction> code,
                        std::vector<uint32_t> declared = {}) {
    Program p;
    p.name = "forged";
    p.instrumented = true;
    p.sandbox_log2 = kArenaLog2;
    p.code = std::move(code);
    p.direct_call_ids = std::move(declared);
    return p;
  }

  VerifierReport Verify(const Program& p) {
    VerifierOptions options;
    options.host = &host_;
    return VerifySandbox(p, options);
  }

  HostCallTable host_;
  uint32_t callable_id_ = 0;
  uint32_t internal_id_ = 0;
};

constexpr Instruction SandboxToR14(uint8_t base_reg, int64_t imm = 0) {
  return Instruction{Op::kSandboxAddr, kSandboxAddrReg, base_reg, 0, imm};
}

constexpr Instruction HaltIns() { return Instruction{Op::kHalt, 0, 0, 0, 0}; }

// ---------------------------------------------------------------------------
// Legitimate instrumenter output is accepted.

TEST_F(VerifierTest, AcceptsInstrumenterOutput) {
  // Loop with loads, stores, a direct call, and an elidable dense run —
  // everything the real pipeline emits.
  Asm a("legit");
  auto loop = a.NewLabel();
  a.LoadImm(R1, 10).LoadImm(R2, 4096).LoadImm(R3, 0);
  a.Bind(loop);
  a.St64(R2, R1);
  a.Ld64(R4, R2);
  a.St64(R2, R4, 8);  // Same base, small delta: elided after instrumentation.
  a.AddI(R2, R2, 16);
  a.AddI(R1, R1, -1);
  a.Bne(R1, R3, loop);
  a.Call(callable_id_);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(inst.ok());

  const VerifierReport report = Verify(*inst);
  EXPECT_TRUE(report.ok()) << report.reason << " at pc " << report.fail_pc;
  EXPECT_EQ(report.direct_call_ids, std::vector<uint32_t>{callable_id_});
  EXPECT_EQ(report.loads_proven, 1u);
  EXPECT_EQ(report.stores_proven, 2u);
  EXPECT_EQ(report.instructions_reached, inst->code.size());
}

TEST_F(VerifierTest, AcceptsElisionEvenWithoutIt) {
  // The non-elided stream (one sandbox per access) verifies too: the
  // verifier constrains the stream's *meaning*, not its shape.
  Asm a("dense");
  a.LoadImm(R1, 0);
  for (int i = 0; i < 8; ++i) {
    a.St64(R1, R1, i * 8);
  }
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  MisfitOptions options{kArenaLog2};
  options.elide_redundant_masks = false;
  Result<Program> plain = Instrument(*p, options);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(Verify(*plain).ok());

  options.elide_redundant_masks = true;
  Result<Program> elided = Instrument(*p, options);
  ASSERT_TRUE(elided.ok());
  EXPECT_TRUE(Verify(*elided).ok());
  // Elision actually happened (first store sandboxes, the rest reuse).
  EXPECT_EQ(elided->code.size(), plain->code.size() - 7);
}

// ---------------------------------------------------------------------------
// The forged-manifest hole: code whose calls escape the declared set.

TEST_F(VerifierTest, RejectsUndeclaredDirectCall) {
  // Declares {callable} but also calls the internal id — the pre-verifier
  // loader accepted this, because it only link-checked the declared list.
  const Program p = Forged(
      {
          Instruction{Op::kCall, 0, 0, 0, callable_id_},
          Instruction{Op::kCall, 0, 0, 0, internal_id_},
          HaltIns(),
      },
      {callable_id_});
  const VerifierReport report = Verify(p);
  EXPECT_EQ(report.status, Status::kIllegalCall);
  EXPECT_EQ(report.fail_pc, 1u);
}

TEST_F(VerifierTest, RejectsDeclaredButNonCallableDirectCall) {
  // Honestly declared, but the target is not graft-callable. The loader's
  // own link check also catches this; the verifier must not depend on it.
  const Program p = Forged(
      {
          Instruction{Op::kCall, 0, 0, 0, internal_id_},
          HaltIns(),
      },
      {internal_id_});
  EXPECT_EQ(Verify(p).status, Status::kIllegalCall);
}

TEST_F(VerifierTest, ExtractsTrueDirectCallSet) {
  const Program p = Forged(
      {
          Instruction{Op::kCall, 0, 0, 0, callable_id_},
          Instruction{Op::kCall, 0, 0, 0, internal_id_},
          HaltIns(),
      },
      {callable_id_, internal_id_});
  VerifierOptions options;  // No host: pure extraction, no callable check.
  const VerifierReport report = VerifySandbox(p, options);
  EXPECT_EQ(report.direct_call_ids,
            (std::vector<uint32_t>{callable_id_, internal_id_}));
}

TEST_F(VerifierTest, UnreachableCallsDoNotCount) {
  // The undeclared call sits after an unconditional jump over it; the CFG
  // never reaches it, so neither can the Vm.
  const Program p = Forged({
      Instruction{Op::kJmp, 0, 0, 0, 2},
      Instruction{Op::kCall, 0, 0, 0, internal_id_},
      HaltIns(),
  });
  const VerifierReport report = Verify(p);
  EXPECT_TRUE(report.ok()) << report.reason;
  EXPECT_TRUE(report.direct_call_ids.empty());
  EXPECT_EQ(report.instructions_reached, 2u);
}

TEST_F(VerifierTest, RejectsUncheckedIndirectCall) {
  // The instrumenter rewrites every kCallR; one surviving is forged.
  const Program p = Forged({
      Instruction{Op::kCallR, 0, 1, 0, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, ConstantNonCallableIndirectTargetIsRuntimeCheckedByDefault) {
  // `loadi r1, internal; ccallr r1` provably aborts at run time — which is
  // the paper's Rule 7 contract, so the default verifier accepts it (the
  // probe enforces) but still extracts the constant target for audits.
  const Program p = Forged({
      Instruction{Op::kLoadImm, 1, 0, 0, internal_id_},
      Instruction{Op::kCheckedCallR, 0, 1, 0, 0},
      HaltIns(),
  });
  const VerifierReport lax = Verify(p);
  EXPECT_TRUE(lax.ok()) << lax.reason;
  EXPECT_EQ(lax.const_indirect_ids, std::vector<uint32_t>{internal_id_});

  // Strict pipelines refuse grafts that provably abort.
  VerifierOptions strict;
  strict.host = &host_;
  strict.reject_constant_indirect_targets = true;
  EXPECT_EQ(VerifySandbox(p, strict).status, Status::kIllegalCall);

  // A callable constant target passes even under strictness.
  const Program q = Forged({
      Instruction{Op::kLoadImm, 1, 0, 0, callable_id_},
      Instruction{Op::kCheckedCallR, 0, 1, 0, 0},
      HaltIns(),
  });
  EXPECT_TRUE(VerifySandbox(q, strict).ok());
}

TEST_F(VerifierTest, DynamicIndirectTargetKeepsRuntimeCheck) {
  // Target loaded from memory: statically unknown, so the verifier leaves
  // it to kCheckedCallR's runtime hash-table probe.
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kLd64, 1, kSandboxAddrReg, 0, 0},
      Instruction{Op::kCheckedCallR, 0, 1, 0, 0},
      HaltIns(),
  });
  const VerifierReport report = Verify(p);
  EXPECT_TRUE(report.ok()) << report.reason;
  EXPECT_EQ(report.dynamic_indirect_calls, 1u);
}

// ---------------------------------------------------------------------------
// Memory confinement.

TEST_F(VerifierTest, RejectsUnsandboxedStore) {
  const Program p = Forged({
      Instruction{Op::kLoadImm, 1, 0, 0, 100},
      Instruction{Op::kSt64, 0, 1, 2, 0},  // Raw address: kernel memory.
      HaltIns(),
  });
  const VerifierReport report = Verify(p);
  EXPECT_EQ(report.status, Status::kVerifyFailed);
  EXPECT_EQ(report.fail_pc, 1u);
}

TEST_F(VerifierTest, RejectsUnsandboxedLoad) {
  const Program p = Forged({
      Instruction{Op::kLd64, 0, 1, 0, 0},  // r1 is caller-controlled: top.
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, AcceptsSandboxedAccessWithSmallOffset) {
  const Program p = Forged({
      SandboxToR14(1, 64),
      Instruction{Op::kLd64, 2, kSandboxAddrReg, 0,
                  static_cast<int64_t>(kSandboxGuardBytes - 8)},
      HaltIns(),
  });
  EXPECT_TRUE(Verify(p).ok());
}

TEST_F(VerifierTest, RejectsOffsetBeyondGuardZone) {
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kLd64, 2, kSandboxAddrReg, 0,
                  static_cast<int64_t>(kSandboxGuardBytes)},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, RejectsNegativeOffsetFromSandboxedBase) {
  // Below the arena base lies kernel memory; subtraction never verifies.
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kLd64, 2, kSandboxAddrReg, 0, -8},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, TracksSandboxedValueThroughArithmetic) {
  // addi on a sandboxed base keeps the fact (small offset), and a
  // const-folded register offset works through kAdd too.
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kAddI, 2, kSandboxAddrReg, 0, 16},  // r2 = sand + 16
      Instruction{Op::kLoadImm, 3, 0, 0, 8},
      Instruction{Op::kAdd, 2, 2, 3, 0},                  // r2 = sand + 24
      Instruction{Op::kLd64, 4, 2, 0, 32},                // off 56 total: ok
      HaltIns(),
  });
  EXPECT_TRUE(Verify(p).ok());
}

TEST_F(VerifierTest, ArithmeticThatEscapesTheGuardGoesToTop) {
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kAddI, 2, kSandboxAddrReg, 0,
                  static_cast<int64_t>(kSandboxGuardBytes)},
      Instruction{Op::kAddI, 2, 2, 0, 8},  // Past the guard: fact lost.
      Instruction{Op::kLd64, 4, 2, 0, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, MaskedBaseLaunderingIsRejected) {
  // `mov r1, r13; sandbox; add r14, r14, r1` would compute base + sandboxed
  // — the classic laundering attack. r13 must read as top, not const 0.
  const Program p = Forged({
      Instruction{Op::kMov, 1, kSandboxBaseReg, 0, 0},
      SandboxToR14(2),
      Instruction{Op::kAdd, 3, kSandboxAddrReg, 1, 0},
      Instruction{Op::kLd64, 4, 3, 0, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, RejectsSandboxRegisterClobber) {
  // VerifyProgram lets instrumented programs write reserved registers (the
  // instrumenter needs r14); a forged program redefining the *mask* would
  // disable the sandbox entirely. The verifier draws the line at r12/r13.
  const Program clobber_mask = Forged({
      Instruction{Op::kLoadImm, kSandboxMaskReg, 0, 0, ~0},
      SandboxToR14(1),
      Instruction{Op::kSt64, 0, kSandboxAddrReg, 2, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(clobber_mask).status, Status::kVerifyFailed);

  const Program clobber_base = Forged({
      Instruction{Op::kLoadImm, kSandboxBaseReg, 0, 0, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(clobber_base).status, Status::kVerifyFailed);
}

// ---------------------------------------------------------------------------
// Join, widening, and analysis bounds.

TEST_F(VerifierTest, JoinRequiresSandboxOnEveryPath) {
  // Diamond: only one arm sandboxes r2; at the merge the fact dies and the
  // access is rejected.
  const Program p = Forged({
      /*0*/ Instruction{Op::kBeq, 0, 0, 1, 3},   // r0 == r1 ? goto 3
      /*1*/ Instruction{Op::kSandboxAddr, 2, 1, 0, 0},
      /*2*/ Instruction{Op::kJmp, 0, 0, 0, 4},
      /*3*/ Instruction{Op::kLoadImm, 2, 0, 0, 4096},
      /*4*/ Instruction{Op::kLd64, 3, 2, 0, 0},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, JoinAcceptsSandboxOnBothPaths) {
  const Program p = Forged({
      /*0*/ Instruction{Op::kBeq, 0, 0, 1, 3},
      /*1*/ Instruction{Op::kSandboxAddr, 2, 1, 0, 0},
      /*2*/ Instruction{Op::kJmp, 0, 0, 0, 4},
      /*3*/ Instruction{Op::kSandboxAddr, 2, 0, 0, 8},
      /*4*/ Instruction{Op::kLd64, 3, 2, 0, 0},
      HaltIns(),
  });
  EXPECT_TRUE(Verify(p).ok());
}

TEST_F(VerifierTest, JoinTakesMaxSandboxedOffset) {
  // Arms contribute sandboxed(0) and sandboxed(guard - 8); the merged fact
  // must keep the larger offset, so an 8-byte access at +8 would escape.
  const Program p = Forged({
      /*0*/ Instruction{Op::kBeq, 0, 0, 1, 3},
      /*1*/ Instruction{Op::kSandboxAddr, 2, 1, 0, 0},
      /*2*/ Instruction{Op::kJmp, 0, 0, 0, 5},
      /*3*/ Instruction{Op::kSandboxAddr, 2, 1, 0, 0},
      /*4*/ Instruction{Op::kAddI, 2, 2, 0,
                        static_cast<int64_t>(kSandboxGuardBytes - 8)},
      /*5*/ Instruction{Op::kLd64, 3, 2, 0, 8},
      HaltIns(),
  });
  EXPECT_EQ(Verify(p).status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, WideningTerminatesLoopedPointerWalk) {
  // A loop that bumps a sandboxed pointer by 8 each iteration: the offset
  // chain would refine forever; widening must push it to top (rejecting
  // the access) in bounded time rather than hanging the loader.
  const Program p = Forged({
      /*0*/ SandboxToR14(1),
      /*1*/ Instruction{Op::kLd64, 2, kSandboxAddrReg, 0, 0},
      /*2*/ Instruction{Op::kAddI, kSandboxAddrReg, kSandboxAddrReg, 0, 8},
      /*3*/ Instruction{Op::kJmp, 0, 0, 0, 1},
  });
  const VerifierReport report = VerifySandbox(p, VerifierOptions{});
  EXPECT_EQ(report.status, Status::kVerifyFailed);
}

TEST_F(VerifierTest, LoopWithResandboxedPointerVerifies) {
  // The shape the real instrumenter emits for a pointer walk: re-sandbox
  // every iteration. The loop join is sandbox(0) ⊔ sandbox(0): stable.
  Asm a("walk");
  auto loop = a.NewLabel();
  a.LoadImm(R1, 0).LoadImm(R2, 32).LoadImm(R3, 0);
  a.Bind(loop);
  a.St64(R1, R2);
  a.AddI(R1, R1, 8);
  a.AddI(R2, R2, -1);
  a.Bne(R2, R3, loop);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(Verify(*inst).ok());
}

TEST_F(VerifierTest, RejectsUninstrumentedPrograms) {
  Asm a("raw");
  a.LoadImm(R0, 1).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(VerifySandbox(*p).status, Status::kNotInstrumented);
}

TEST_F(VerifierTest, RejectsProgramsOverTheInstructionLimit) {
  const Program p = Forged({
      SandboxToR14(1),
      Instruction{Op::kLd64, 2, kSandboxAddrReg, 0, 0},
      HaltIns(),
  });
  VerifierOptions options;
  options.max_instructions = 2;
  EXPECT_EQ(VerifySandbox(p, options).status, Status::kVerifyFailed);
}

// ---------------------------------------------------------------------------
// The payoff: the Vm's verified fast path is exactly as confined.

TEST_F(VerifierTest, VerifiedFastPathMatchesCheckedSemantics) {
  // Same program, bounds-checked vs verified: identical results, and the
  // kernel region stays clean either way.
  Asm a("payload");
  auto loop = a.NewLabel();
  a.LoadImm(R1, 100).LoadImm(R2, 0).LoadImm(R3, 0).LoadImm(R0, 0);
  a.Bind(loop);
  a.St64(R2, R1);
  a.Ld64(R4, R2);
  a.Add(R0, R0, R4);
  a.AddI(R2, R2, 8);
  a.AddI(R1, R1, -1);
  a.Bne(R1, R3, loop);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(inst.ok());
  ASSERT_TRUE(Verify(*inst).ok());

  MemoryImage checked_img(4096, kArenaLog2);
  MemoryImage verified_img(4096, kArenaLog2);
  Vm vm(&host_);
  const RunOutcome checked =
      vm.Run(*inst, &checked_img, {}, RunOptions{});

  Program verified = *inst;
  verified.verified = true;
  const RunOutcome fast = vm.Run(verified, &verified_img, {}, RunOptions{});

  EXPECT_EQ(checked.status, Status::kOk);
  EXPECT_EQ(fast.status, Status::kOk);
  EXPECT_EQ(fast.ret, checked.ret);
  EXPECT_EQ(fast.instructions, checked.instructions);
  for (uint64_t i = 0; i < verified_img.kernel_size(); ++i) {
    ASSERT_EQ(verified_img.data()[i], checked_img.data()[i]) << "byte " << i;
  }
}

}  // namespace
}  // namespace vino
