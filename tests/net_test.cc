// Network substrate tests: ports, connections, the net.* host interface,
// bandwidth accounting, and transactional retraction of partial responses.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/net/net_stack.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

class NetTest : public ::testing::Test {
 protected:
  NetTest() : stack_(&txn_, &host_, &ns_) {}

  // Builds an echo handler: recv into arena, send it back, close.
  std::shared_ptr<Graft> EchoHandler(uint64_t bandwidth_limit = 1 << 20) {
    const uint32_t recv = host_.IdOf("net.recv").value();
    const uint32_t send = host_.IdOf("net.send").value();
    const uint32_t close = host_.IdOf("net.close").value();

    Asm a("echo");
    // r6 = connection id (arrives in r0).
    a.Mov(R6, R0);
    // recv(conn, arena_base, 1024). Arena base must be computed by the
    // graft; the sandbox base register is not readable, so grafts use
    // address 0 and rely on masking... but host calls check InArena, so we
    // pass a real arena address via loadi of 0 + the sandbox OR trick is
    // unavailable. Instead the kernel convention is that grafts address
    // their arena from 0 upward and the host functions treat addresses
    // relative... -- see NOTE below; here we cheat and use the known arena
    // base for a 64KiB-arena graft image (4096-byte kernel region).
    a.LoadImm(R7, 65536);  // Arena base for kernel_region=4096, arena 64KiB.
    a.Mov(R0, R6);
    a.Mov(R1, R7);
    a.LoadImm(R2, 1024);
    a.Call(recv);
    a.Mov(R8, R0);  // bytes received
    // send(conn, base, n)
    a.Mov(R0, R6);
    a.Mov(R1, R7);
    a.Mov(R2, R8);
    a.Call(send);
    // close(conn)
    a.Mov(R0, R6);
    a.Call(close);
    a.LoadImm(R0, 1);
    a.Halt();
    Result<Program> p = a.Finish();
    EXPECT_TRUE(p.ok());
    Result<Program> inst = Instrument(*p);
    EXPECT_TRUE(inst.ok());
    auto graft = std::make_shared<Graft>("echo", *inst, kUser, 4096);
    graft->account().SetLimit(ResourceType::kNetBandwidth, bandwidth_limit);
    return graft;
  }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  NetStack stack_;
};

TEST_F(NetTest, DeliveryWithoutListenerFails) {
  EXPECT_FALSE(stack_.DeliverConnection(80, "x").ok());
}

TEST_F(NetTest, ListenIsIdempotent) {
  EventGraftPoint* a = stack_.ListenTcp(80);
  EventGraftPoint* b = stack_.ListenTcp(80);
  EXPECT_EQ(a, b);
  EXPECT_NE(stack_.ListenUdp(80), a);  // Different protocol, different point.
}

TEST_F(NetTest, EchoHandlerRoundTrip) {
  EventGraftPoint* point = stack_.ListenTcp(7);
  ASSERT_EQ(point->AddHandler(EchoHandler(), 1), Status::kOk);

  Result<ConnectionId> conn = stack_.DeliverConnection(7, "hello vino");
  ASSERT_TRUE(conn.ok());
  Connection* c = stack_.FindConnection(*conn);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->tx, "hello vino");
  EXPECT_FALSE(c->open);  // Handler closed it.
  EXPECT_EQ(stack_.stats().bytes_sent, 10u);
}

TEST_F(NetTest, BandwidthLimitAbortsAndRetractsResponse) {
  EventGraftPoint* point = stack_.ListenTcp(7);
  // 4-byte bandwidth budget; a 10-byte send exceeds it -> the host call
  // fails -> the handler's transaction aborts -> handler removed.
  ASSERT_EQ(point->AddHandler(EchoHandler(/*bandwidth_limit=*/4), 1), Status::kOk);

  Result<ConnectionId> conn = stack_.DeliverConnection(7, "0123456789");
  ASSERT_TRUE(conn.ok());
  Connection* c = stack_.FindConnection(*conn);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->tx, "");             // No partial junk leaked.
  EXPECT_TRUE(c->open);             // Close (never reached) not applied.
  EXPECT_EQ(point->handler_count(), 0u);  // Handler removed after abort.
}

TEST_F(NetTest, AbortedHandlerRetractsPartialSend) {
  // Handler sends 4 bytes successfully, then loops forever: the abort must
  // retract the already-sent bytes (undo log on net.send).
  const uint32_t send = host_.IdOf("net.send").value();
  Asm a("partial");
  a.Mov(R6, R0);
  a.LoadImm(R7, 65536);
  a.Mov(R1, R7);
  a.LoadImm(R2, 4);
  a.Call(send);
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);  // Covert denial of service.
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  auto graft = std::make_shared<Graft>("partial", *inst, kUser, 4096);
  graft->account().SetLimit(ResourceType::kNetBandwidth, 1 << 20);

  EventGraftPoint::Config config;
  config.fuel = 50'000;
  EventGraftPoint point("test.partial-send", config, &txn_, &host_, &ns_);
  ASSERT_EQ(point.AddHandler(graft, 1), Status::kOk);

  // Create a raw connection (no stack listener needed) and dispatch.
  EventGraftPoint* listen = stack_.ListenTcp(9);
  (void)listen;
  Result<ConnectionId> conn = stack_.DeliverConnection(9, "abcd");
  ASSERT_TRUE(conn.ok());
  Connection* c = stack_.FindConnection(*conn);
  ASSERT_NE(c, nullptr);
  const uint64_t args[1] = {*conn};
  point.Dispatch(args);
  EXPECT_EQ(c->tx, "");  // The 4 sent bytes were retracted by the abort.
}

TEST_F(NetTest, RecvRejectsKernelDestinations) {
  // A graft cannot use net.recv as a confused deputy to scribble on kernel
  // memory: destination must be inside its own arena.
  const uint32_t recv = host_.IdOf("net.recv").value();
  Asm a("deputy");
  a.Mov(R6, R0);
  a.Mov(R0, R6);
  a.LoadImm(R1, 64);  // Kernel region address!
  a.LoadImm(R2, 16);
  a.Call(recv);
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  auto graft = std::make_shared<Graft>("deputy", *inst, kUser, 4096);

  EventGraftPoint* point = stack_.ListenTcp(11);
  ASSERT_EQ(point->AddHandler(graft, 1), Status::kOk);
  Result<ConnectionId> conn = stack_.DeliverConnection(11, "payload");
  ASSERT_TRUE(conn.ok());
  // The host call failed -> handler aborted and removed.
  EXPECT_EQ(point->handler_count(), 0u);
}

TEST_F(NetTest, UdpPacketDelivery) {
  EventGraftPoint* point = stack_.ListenUdp(2049);
  ASSERT_EQ(point->AddHandler(EchoHandler(), 1), Status::kOk);
  Result<ConnectionId> pkt = stack_.DeliverPacket(2049, "nfs-req");
  ASSERT_TRUE(pkt.ok());
  EXPECT_EQ(stack_.FindConnection(*pkt)->tx, "nfs-req");
  EXPECT_EQ(stack_.stats().packets, 1u);
}

TEST_F(NetTest, MultipleHandlersEachOwnTransaction) {
  EventGraftPoint* point = stack_.ListenTcp(13);
  ASSERT_EQ(point->AddHandler(EchoHandler(), 1), Status::kOk);

  // Second handler: a logger that always aborts (bad internal call).
  const uint32_t send = host_.IdOf("net.send").value();
  Asm a("aborter");
  a.Mov(R6, R0);
  a.LoadImm(R1, 1);  // Arena addr 1... then wild indirect call:
  a.LoadImm(R7, 0xffff);
  a.CallR(R7);
  a.Call(send);
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(point->AddHandler(std::make_shared<Graft>("aborter", *inst, kUser, 4096), 2),
            Status::kOk);

  Result<ConnectionId> conn = stack_.DeliverConnection(13, "hi");
  ASSERT_TRUE(conn.ok());
  // Echo handler's reply survives its own committed transaction even though
  // the second handler aborted.
  EXPECT_EQ(stack_.FindConnection(*conn)->tx, "hi");
  EXPECT_EQ(point->handler_count(), 1u);
}

TEST_F(NetTest, AsyncDeliveryCompletesAfterDrain) {
  EventGraftPoint* point = stack_.ListenTcp(8080);
  auto handler = EchoHandler();
  handler->account().SetLimit(ResourceType::kThreads, 4);
  ASSERT_EQ(point->AddHandler(handler, 1), Status::kOk);

  Result<ConnectionId> conn = stack_.DeliverConnectionAsync(8080, "async!");
  ASSERT_TRUE(conn.ok());
  stack_.DrainEvents();
  Connection* c = stack_.FindConnection(*conn);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->tx, "async!");
  EXPECT_FALSE(c->open);
  EXPECT_EQ(stack_.stats().bytes_sent, 6u);
}

TEST_F(NetTest, AsyncTrafficFromManyDispatchersNoEventLost) {
  // Route a burst of UDP traffic through the pool from several dispatcher
  // threads; every packet must be answered after the drain. The handler is
  // native and touches only its own connection, so concurrent invocations
  // (pool workers + inline fallbacks) never share mutable state — a VM
  // graft would share its one arena across workers.
  EventGraftPoint* point = stack_.ListenUdp(5353);
  auto handler = std::make_shared<Graft>(
      "native-echo",
      [this](std::span<const uint64_t> args, MemoryImage*) -> Result<uint64_t> {
        Connection* c = stack_.FindConnection(args[0]);
        if (c == nullptr) {
          return Status::kNotFound;
        }
        c->tx = c->rx;
        return 0ull;
      },
      GraftIdentity{0, true});
  handler->account().SetLimit(ResourceType::kThreads, 8);
  ASSERT_EQ(point->AddHandler(handler, 1), Status::kOk);

  constexpr int kDispatchers = 4;
  constexpr int kPerDispatcher = 25;
  std::vector<std::vector<ConnectionId>> ids(kDispatchers);
  std::vector<std::thread> dispatchers;
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([this, d, &ids] {
      for (int i = 0; i < kPerDispatcher; ++i) {
        Result<ConnectionId> pkt = stack_.DeliverPacketAsync(5353, "ping");
        EXPECT_TRUE(pkt.ok());
        if (pkt.ok()) {
          ids[static_cast<size_t>(d)].push_back(*pkt);
        }
      }
    });
  }
  for (auto& t : dispatchers) {
    t.join();
  }
  stack_.DrainEvents();

  EXPECT_EQ(stack_.stats().packets,
            static_cast<uint64_t>(kDispatchers) * kPerDispatcher);
  for (const auto& per_thread : ids) {
    for (const ConnectionId id : per_thread) {
      Connection* c = stack_.FindConnection(id);
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->tx, "ping") << "connection " << id;
    }
  }
  const auto point_stats = point->stats();
  EXPECT_EQ(point_stats.handler_runs,
            static_cast<uint64_t>(kDispatchers) * kPerDispatcher);
}

}  // namespace
}  // namespace vino
