// Disassembler tests, including the assemble -> disassemble -> reassemble
// round trip for uninstrumented programs.

#include <gtest/gtest.h>

#include "src/sfi/assembler.h"
#include "src/sfi/disasm.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

TEST(DisasmTest, SingleInstructions) {
  DisasmOptions options;
  EXPECT_EQ(DisassembleInstruction({Op::kHalt, 0, 0, 0, 0}, options), "halt");
  EXPECT_EQ(DisassembleInstruction({Op::kLoadImm, 3, 0, 0, -7}, options),
            "loadi r3, -7");
  EXPECT_EQ(DisassembleInstruction({Op::kAdd, 1, 2, 3, 0}, options),
            "add r1, r2, r3");
  EXPECT_EQ(DisassembleInstruction({Op::kLd64, 4, 5, 0, 16}, options),
            "ld64 r4, r5, 16");
  EXPECT_EQ(DisassembleInstruction({Op::kSt8, 0, 5, 6, 0}, options), "st8 r5, r6");
  EXPECT_EQ(DisassembleInstruction({Op::kBne, 0, 1, 2, 9}, options),
            "bne r1, r2, L9");
}

TEST(DisasmTest, CallNamesResolvedThroughHostTable) {
  HostCallTable host;
  const uint32_t id = host.Register(
      "fs.read", [](HostCallContext&) -> Result<uint64_t> { return 0ull; }, true);
  DisasmOptions options;
  options.host = &host;
  EXPECT_EQ(DisassembleInstruction(
                {Op::kCall, 0, 0, 0, static_cast<int64_t>(id)}, options),
            "call fs.read");
  // Unknown ids fall back to numeric form.
  EXPECT_EQ(DisassembleInstruction({Op::kCall, 0, 0, 0, 999}, options), "call 999");
}

TEST(DisasmTest, LabelsSynthesizedAtBranchTargets) {
  Asm a("looper");
  auto top = a.NewLabel();
  a.LoadImm(R1, 3);
  a.Bind(top);
  a.AddI(R1, R1, -1);
  a.LoadImm(R2, 0);
  a.Bne(R1, R2, top);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const std::string text = Disassemble(*p);
  EXPECT_NE(text.find("L1:"), std::string::npos);
  EXPECT_NE(text.find("bne r1, r2, L1"), std::string::npos);
}

TEST(DisasmTest, RoundTripThroughAssembler) {
  Asm a("roundtrip");
  auto loop = a.NewLabel();
  auto out = a.NewLabel();
  a.LoadImm(R1, 10);
  a.LoadImm(R0, 0);
  a.LoadImm(R2, 0);
  a.Bind(loop);
  a.Beq(R1, R2, out);
  a.Add(R0, R0, R1);
  a.AddI(R1, R1, -1);
  a.Jmp(loop);
  a.Bind(out);
  a.Halt();
  Result<Program> original = a.Finish();
  ASSERT_TRUE(original.ok());

  const std::string text = Disassemble(*original);
  Result<Program> reassembled = Assemble(text, "roundtrip", nullptr);
  ASSERT_TRUE(reassembled.ok()) << text;
  EXPECT_EQ(reassembled->code, original->code);
}

TEST(DisasmTest, InstrumentedProgramsAnnotated) {
  Asm a("mem");
  a.LoadImm(R1, 100).St64(R1, R1).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  const std::string text = Disassemble(*inst);
  EXPECT_NE(text.find("MiSFIT-instrumented"), std::string::npos);
  EXPECT_NE(text.find("sandbox r14, r1"), std::string::npos);
  EXPECT_NE(text.find("; misfit"), std::string::npos);
  // Instrumented text must NOT reassemble (forgery prevention).
  EXPECT_FALSE(Assemble(text, "forged", nullptr).ok());
}

}  // namespace
}  // namespace vino
