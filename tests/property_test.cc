// Property-based and parameterized sweeps over the core invariants:
//
//  P1. Sandbox confinement: no instrumented program, including randomly
//      generated ones, ever writes a byte outside its arena.
//  P2. Semantic transparency: instrumentation never changes the result of
//      a program whose accesses were already in-arena.
//  P3. Undo soundness: replaying the undo log restores a snapshot of
//      randomly mutated state, for any interleaving of nested commits and
//      aborts.
//  P4. Encode/decode round-trips every structurally valid program.
//  P5. Charge conservation: usage never exceeds limit; balanced
//      charge/uncharge sequences return to zero.
//  P6. Eviction safety: the page daemon never evicts a wired page and
//      never lets a graft evict across address spaces, for random graft
//      answers.
//  P7. Verifier soundness: any program the load-time verifier accepts can
//      run with the per-access bounds checks deleted — under arbitrary
//      entry arguments — without touching kernel memory; and real
//      instrumenter output always lands in the accept set with unchanged
//      semantics.

#include <gtest/gtest.h>

#include <cstring>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/fuzz/program_gen.h"
#include "src/mem/memory_system.h"
#include "src/resource/account.h"
#include "src/sfi/assembler.h"
#include "src/sfi/isa.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/misfit.h"
#include "src/sfi/threaded_vm.h"
#include "src/sfi/verifier.h"
#include "src/sfi/vm.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

// ---------------------------------------------------------------------
// P1/P2: random-program generation.
//
// The generators live in src/fuzz/program_gen.h, shared with the
// graftfuzz harness; VINO_FUZZ_SEEDS / VINO_FUZZ_ITERS widen the sweep
// without a rebuild, and failures dump a graftdump-style disassembly to
// VINO_FUZZ_ARTIFACTS for offline repro.
// ---------------------------------------------------------------------

// Dumps `program` on a just-failed trial and stops the sweep (later trials
// of a poisoned RNG stream add noise, not information).
bool DumpOnFailure(const char* label, uint64_t seed, int trial,
                   const Program& program, const char* notes) {
  if (!::testing::Test::HasFailure()) {
    return false;
  }
  const std::string path =
      fuzz::DumpArtifact(label, seed, trial, program, notes, "");
  if (!path.empty()) {
    std::cerr << "failing program dumped to " << path << "\n";
  }
  return true;
}

class SandboxFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SandboxFuzzTest, RandomProgramsNeverEscapeArena) {
  Rng rng(GetParam());
  HostCallTable host;
  const int trials = fuzz::ItersFromEnv(40);
  for (int trial = 0; trial < trials; ++trial) {
    const Program raw = fuzz::RandomProgram(rng, fuzz::GenOptions{.length = 30});
    Result<Program> inst = Instrument(raw, MisfitOptions{16});
    ASSERT_TRUE(inst.ok());

    MemoryImage image(8192, 16);
    // Canary pattern over the whole kernel region.
    for (uint64_t i = 0; i < image.kernel_size(); ++i) {
      image.data()[i] = static_cast<uint8_t>(i * 13 + 7);
    }
    Vm vm(&image, &host);
    const RunOutcome out = vm.Run(*inst, {}, RunOptions{});
    EXPECT_EQ(out.status, Status::kOk);

    for (uint64_t i = 0; i < image.kernel_size(); ++i) {
      ASSERT_EQ(image.data()[i], static_cast<uint8_t>(i * 13 + 7))
          << "kernel byte " << i << " corrupted (seed=" << GetParam()
          << " trial=" << trial << ")";
    }
  }
}

TEST_P(SandboxFuzzTest, InstrumentationPreservesInArenaSemantics) {
  // Programs restricted to in-arena addresses must compute identical
  // results before and after instrumentation.
  Rng rng(GetParam() ^ 0xabcdef);
  HostCallTable host;
  for (int trial = 0; trial < 40; ++trial) {
    MemoryImage image(4096, 16);
    const uint64_t base = image.arena_base();

    Asm a("inarena");
    // Seed registers with in-arena addresses, then random ALU + mem ops
    // with small offsets so every access stays inside the 64 KiB arena.
    for (uint8_t reg = 1; reg < 8; ++reg) {
      a.LoadImm(Reg{reg}, static_cast<int64_t>(base + rng.Below(32 * 1024)));
    }
    for (int i = 0; i < 25; ++i) {
      const auto addr_reg = Reg{static_cast<uint8_t>(1 + rng.Below(7))};
      const auto val_reg = Reg{static_cast<uint8_t>(8 + rng.Below(4))};
      switch (rng.Below(4)) {
        case 0:
          a.St64(addr_reg, val_reg, static_cast<int64_t>(rng.Below(1024)));
          break;
        case 1:
          a.Ld64(val_reg, addr_reg, static_cast<int64_t>(rng.Below(1024)));
          break;
        case 2:
          a.Add(val_reg, val_reg, addr_reg);
          break;
        default:
          a.XorI(val_reg, val_reg, static_cast<int64_t>(rng.Next() & 0xffff));
          break;
      }
    }
    a.Add(R0, R8, R9);
    a.Add(R0, R0, R10);
    a.Halt();
    Result<Program> raw = a.Finish();
    ASSERT_TRUE(raw.ok());

    Vm vm(&image, &host);
    const RunOutcome before = vm.Run(*raw, {}, RunOptions{});
    ASSERT_EQ(before.status, Status::kOk);

    image.ZeroArena();
    Result<Program> inst = Instrument(*raw, MisfitOptions{16});
    ASSERT_TRUE(inst.ok());
    const RunOutcome after = vm.Run(*inst, {}, RunOptions{});
    ASSERT_EQ(after.status, Status::kOk);
    EXPECT_EQ(before.ret, after.ret) << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(SandboxFuzzTest, EncodeDecodeRoundTripsRandomPrograms) {
  Rng rng(GetParam() ^ 0x777);
  const int trials = fuzz::ItersFromEnv(40);
  for (int trial = 0; trial < trials; ++trial) {
    const int length = static_cast<int>(rng.Range(1, 60));
    Program p = fuzz::RandomProgram(rng, fuzz::GenOptions{.length = length});
    p.direct_call_ids = {static_cast<uint32_t>(rng.Below(100) + 1)};
    const std::vector<uint8_t> bytes = EncodeProgram(p);
    Result<Program> decoded = DecodeProgram(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->code, p.code);
    EXPECT_EQ(decoded->direct_call_ids, p.direct_call_ids);
    EXPECT_EQ(decoded->name, p.name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SandboxFuzzTest,
    ::testing::ValuesIn(fuzz::SeedsFromEnv({1, 42, 1337, 0xdeadbeef, 99999})));

// ---------------------------------------------------------------------
// P7: verifier soundness.
// ---------------------------------------------------------------------

class VerifierFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifierFuzzTest, AcceptedForgeriesAreConfinedWithoutRuntimeChecks) {
  // Random forged instruction streams (hand-marked "instrumented", so no
  // instrumenter discipline) probe the analysis directly: whatever the
  // verifier accepts runs with Program::verified set — every per-access
  // InBounds branch deleted — under fuzzed entry arguments, and a kernel
  // canary checks that the accept set really is the confined set.
  Rng rng(GetParam() ^ 0x5afe);
  HostCallTable host;
  size_t accepted = 0;
  const int trials = fuzz::ItersFromEnv(150);
  for (int trial = 0; trial < trials; ++trial) {
    const Program p = fuzz::RandomForgedProgram(rng);
    if (VerifyProgram(p) != Status::kOk || !VerifySandbox(p).ok()) {
      continue;
    }
    ++accepted;

    Program verified = p;
    verified.verified = true;
    MemoryImage image(8192, 16);
    for (uint64_t i = 0; i < image.kernel_size(); ++i) {
      image.data()[i] = static_cast<uint8_t>(i * 29 + 3);
    }
    uint64_t args[kMaxArgs];
    for (uint64_t& arg : args) {
      arg = rng.Next();  // Includes kernel addresses and wild pointers.
    }
    Vm vm(&image, &host);
    const RunOutcome out = vm.Run(verified, args, RunOptions{});
    EXPECT_EQ(out.status, Status::kOk)
        << "seed=" << GetParam() << " trial=" << trial;
    for (uint64_t i = 0; i < image.kernel_size(); ++i) {
      if (image.data()[i] != static_cast<uint8_t>(i * 29 + 3)) {
        ADD_FAILURE() << "kernel byte " << i << " corrupted through the "
                      << "verified fast path (seed=" << GetParam()
                      << " trial=" << trial << ")";
        break;
      }
    }
    if (DumpOnFailure("verifier-forged", GetParam(), trial, p,
                      "accepted forgery escaped confinement on the "
                      "checks-deleted fast path")) {
      return;
    }
  }
  // The property must not hold vacuously: some forgeries verify.
  EXPECT_GT(accepted, 0u) << "seed=" << GetParam();
}

TEST_P(VerifierFuzzTest, InstrumenterOutputVerifiesAndFastPathAgrees) {
  // Completeness half of P7: everything the real pipeline emits is in the
  // accept set, and deleting the bounds checks never changes its meaning.
  Rng rng(GetParam() ^ 0xfa57);
  HostCallTable host;
  const int trials = fuzz::ItersFromEnv(40);
  for (int trial = 0; trial < trials; ++trial) {
    const Program raw = fuzz::RandomProgram(rng, fuzz::GenOptions{.length = 30});
    Result<Program> inst = Instrument(raw, MisfitOptions{16});
    ASSERT_TRUE(inst.ok());
    const VerifierReport report = VerifySandbox(*inst);
    EXPECT_TRUE(report.ok()) << report.reason << " at pc " << report.fail_pc
                             << " (seed=" << GetParam() << " trial=" << trial
                             << ")";
    if (DumpOnFailure("verifier-complete", GetParam(), trial, *inst,
                      "real instrumenter output rejected by the verifier")) {
      return;
    }

    uint64_t args[kMaxArgs];
    for (uint64_t& arg : args) {
      arg = rng.Next();
    }
    MemoryImage checked_img(8192, 16);
    MemoryImage verified_img(8192, 16);
    Vm vm(&host);
    const RunOutcome checked =
        vm.Run(*inst, &checked_img, args, RunOptions{});
    Program verified = *inst;
    verified.verified = true;
    const RunOutcome fast = vm.Run(verified, &verified_img, args, RunOptions{});
    EXPECT_EQ(fast.status, checked.status);
    EXPECT_EQ(fast.ret, checked.ret);
    EXPECT_EQ(fast.instructions, checked.instructions);
    if (DumpOnFailure("verifier-complete", GetParam(), trial, *inst,
                      "checked and checks-deleted paths diverged")) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VerifierFuzzTest,
    ::testing::ValuesIn(fuzz::SeedsFromEnv({2, 77, 2026, 0xfade, 40404})));

// ---------------------------------------------------------------------
// P8: tier equivalence. The Tier-1 direct-threaded engine and the Tier-0
// interpreter are the same abstract machine: for any program the real
// pipeline emits, both tiers must produce identical registers, identical
// memory images, the identical host-call sequence, and identical abort
// reasons — including mid-program aborts (fuel exhaustion, Rule-7 bad
// indirect calls).
// ---------------------------------------------------------------------

class TierFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TierFuzzTest, TiersAgreeOnRegistersMemoryHostCallsAndAborts) {
  Rng rng(GetParam() ^ 0x71e2);

  // One recording host table per tier, registered identically so ids match;
  // the recorded (id, arg) sequences must come out equal. A second,
  // non-graft-callable id makes some trials end in a Rule-7 abort.
  struct RecordingHost {
    HostCallTable table;
    std::vector<std::pair<uint64_t, uint64_t>> calls;
    uint32_t ok_id = 0;
    uint32_t hostile_id = 0;
    RecordingHost() {
      ok_id = table.Register(
          "fuzz.record",
          [this](HostCallContext& ctx) -> Result<uint64_t> {
            calls.emplace_back(0, ctx.args[0]);
            return ctx.args[0] ^ 0x9e3779b97f4a7c15ull;
          },
          true);
      hostile_id = table.Register(
          "fuzz.hostile",
          [](HostCallContext&) -> Result<uint64_t> { return 1ull; },
          /*graft_callable=*/false);
    }
  };
  RecordingHost host0;
  RecordingHost host1;
  ASSERT_EQ(host0.ok_id, host1.ok_id);
  ASSERT_EQ(host0.hostile_id, host1.hostile_id);

  size_t compiled_count = 0;
  size_t abort_count = 0;
  const int trials = fuzz::ItersFromEnv(60);
  for (int trial = 0; trial < trials; ++trial) {
    // RandomProgram's ALU/memory mix, plus indirect host calls: mostly the
    // recorder, occasionally the non-callable id (a guaranteed abort).
    const int length = static_cast<int>(rng.Range(5, 40));
    const Program raw = fuzz::RandomProgram(
        rng, fuzz::GenOptions{.length = length,
                              .ok_call_id = host0.ok_id,
                              .hostile_call_id = host0.hostile_id,
                              .hostile_call_chance = 0.1});
    Result<Program> inst = Instrument(raw, MisfitOptions{16});
    ASSERT_TRUE(inst.ok());
    ASSERT_TRUE(VerifySandbox(*inst).ok());

    Program tier1 = *inst;
    tier1.verified = true;
    tier1.compiled = CompileThreaded(tier1);
    ASSERT_NE(tier1.compiled, nullptr)
        << "seed=" << GetParam() << " trial=" << trial;
    ++compiled_count;
    Program tier0 = tier1;
    tier0.compiled = nullptr;

    uint64_t args[kMaxArgs];
    for (uint64_t& arg : args) {
      arg = rng.Next();
    }
    // Small fuel budgets on some trials force mid-program fuel aborts, so
    // abort *reasons* get differential coverage too.
    RunOptions options;
    if (rng.Chance(0.3)) {
      options.fuel = rng.Range(1, 64);
    }
    uint64_t regs0[kNumRegisters];
    uint64_t regs1[kNumRegisters];
    MemoryImage image0(8192, 16);
    MemoryImage image1(8192, 16);

    host0.calls.clear();
    options.final_regs = regs0;
    const RunOutcome out0 =
        Vm(&host0.table).Run(tier0, &image0, args, options);

    host1.calls.clear();
    options.final_regs = regs1;
    const RunOutcome out1 =
        ThreadedVm(&host1.table).Run(tier1, &image1, args, options);

    EXPECT_EQ(out1.status, out0.status)
        << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(out1.ret, out0.ret)
        << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(out1.instructions, out0.instructions)
        << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(out0.tier, ExecTier::kTier0);
    EXPECT_EQ(out1.tier, ExecTier::kTier1);
    for (int i = 0; i < kNumRegisters; ++i) {
      if (regs1[i] != regs0[i]) {
        ADD_FAILURE() << "register r" << i << " diverged (seed=" << GetParam()
                      << " trial=" << trial << ")";
        break;
      }
    }
    EXPECT_EQ(host1.calls, host0.calls)
        << "host-call sequences diverged (seed=" << GetParam()
        << " trial=" << trial << ")";
    EXPECT_EQ(
        std::memcmp(image0.data(), image1.data(), image0.total_size()), 0)
        << "memory images diverged (seed=" << GetParam() << " trial=" << trial
        << ")";
    if (DumpOnFailure("tier-fuzz", GetParam(), trial, tier1,
                      "Tier-0 and Tier-1 diverged on this program")) {
      return;
    }
    if (!IsOk(out0.status)) {
      ++abort_count;
    }
  }
  // Not vacuous: every trial compiled, and some trials aborted mid-program.
  EXPECT_EQ(compiled_count, static_cast<size_t>(trials));
  EXPECT_GT(abort_count, 0u) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TierFuzzTest,
    ::testing::ValuesIn(fuzz::SeedsFromEnv({6, 83, 7001, 0x7071, 52525})));

// ---------------------------------------------------------------------
// P3: undo soundness under random nested transaction trees.
// ---------------------------------------------------------------------

class UndoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UndoFuzzTest, NestedCommitAbortAlwaysRestoresAbortedState) {
  // Model: an array of 32 cells. We run a random tree of transactions,
  // mutating cells through TxnSet. A shadow interpreter tracks what the
  // final state *should* be: mutations under any aborted ancestor vanish.
  Rng rng(GetParam());
  TxnManager manager;

  for (int trial = 0; trial < 30; ++trial) {
    static uint64_t cells[32];
    uint64_t shadow[32];
    for (int i = 0; i < 32; ++i) {
      cells[i] = shadow[i] = rng.Next() & 0xff;
    }

    // Each frame records the shadow snapshot at Begin so an abort can
    // restore it.
    struct Frame {
      Transaction* txn;
      uint64_t snapshot[32];
    };
    std::vector<Frame> stack;

    const int steps = 60;
    for (int s = 0; s < steps; ++s) {
      const uint64_t action = rng.Below(10);
      if (action < 4 || stack.empty()) {
        if (stack.size() < 6) {
          Frame frame;
          frame.txn = manager.Begin();
          std::copy(std::begin(shadow), std::end(shadow), frame.snapshot);
          stack.push_back(frame);
        }
      } else if (action < 8) {
        const size_t i = rng.Below(32);
        const uint64_t v = rng.Next() & 0xff;
        TxnSet(&cells[i], v);
        shadow[i] = v;
      } else if (action < 9) {
        // Commit innermost: its effects persist into the parent scope.
        Frame frame = stack.back();
        stack.pop_back();
        ASSERT_EQ(manager.Commit(frame.txn), Status::kOk);
      } else {
        // Abort innermost: state reverts to its Begin snapshot.
        Frame frame = stack.back();
        stack.pop_back();
        manager.Abort(frame.txn, Status::kTxnAborted);
        std::copy(std::begin(frame.snapshot), std::end(frame.snapshot), shadow);
      }
    }
    // Unwind what's left with random outcomes.
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      if (rng.Chance(0.5)) {
        ASSERT_EQ(manager.Commit(frame.txn), Status::kOk);
      } else {
        manager.Abort(frame.txn, Status::kTxnAborted);
        std::copy(std::begin(frame.snapshot), std::end(frame.snapshot), shadow);
      }
    }

    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(cells[i], shadow[i])
          << "cell " << i << " diverged (seed=" << GetParam() << " trial=" << trial
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoFuzzTest,
                         ::testing::Values(7, 21, 4242, 0xfeed, 31337));

// ---------------------------------------------------------------------
// P5: resource charge conservation.
// ---------------------------------------------------------------------

class ChargeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChargeFuzzTest, UsageNeverExceedsLimitAndBalancesToZero) {
  Rng rng(GetParam());
  ResourceAccount account("fuzz");
  const uint64_t limit = rng.Range(100, 10'000);
  account.SetLimit(ResourceType::kMemory, limit);

  std::vector<uint64_t> outstanding;
  for (int step = 0; step < 500; ++step) {
    if (rng.Chance(0.6)) {
      const uint64_t amount = rng.Range(1, 200);
      if (IsOk(account.Charge(ResourceType::kMemory, amount))) {
        outstanding.push_back(amount);
      }
    } else if (!outstanding.empty()) {
      const size_t i = rng.Below(outstanding.size());
      account.Uncharge(ResourceType::kMemory, outstanding[i]);
      outstanding[i] = outstanding.back();
      outstanding.pop_back();
    }
    ASSERT_LE(account.usage(ResourceType::kMemory), limit);
  }
  for (const uint64_t amount : outstanding) {
    account.Uncharge(ResourceType::kMemory, amount);
  }
  EXPECT_EQ(account.usage(ResourceType::kMemory), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChargeFuzzTest,
                         ::testing::Values(3, 17, 2025, 0xbeef, 555));

// ---------------------------------------------------------------------
// P6: eviction safety for arbitrary graft answers.
// ---------------------------------------------------------------------

class EvictionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvictionFuzzTest, RandomGraftAnswersNeverEvictWiredOrForeignPages) {
  Rng rng(GetParam());
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  MemorySystem mem(24, &txn, &host, &ns);
  VirtualAddressSpace* a = mem.CreateVas("a", 16);
  VirtualAddressSpace* b = mem.CreateVas("b", 16);

  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mem.Touch(a->id(), i).ok());
    ASSERT_TRUE(mem.Touch(b->id(), i).ok());
  }
  // Wire two of a's pages.
  ASSERT_EQ(a->Wire(0), Status::kOk);
  ASSERT_EQ(a->Wire(1), Status::kOk);
  Page* wired0 = a->FindResident(0);
  Page* wired1 = a->FindResident(1);

  for (int round = 0; round < 50; ++round) {
    // Install a graft on `a` that returns a random page id (possibly
    // foreign, wired, free, or nonsense).
    const uint64_t answer = rng.Below(30);
    Asm g("rand-evict");
    g.LoadImm(R0, static_cast<int64_t>(answer)).Halt();
    Result<Program> inst = Instrument(*g.Finish());
    ASSERT_TRUE(inst.ok());
    a->eviction_point().Remove();
    ASSERT_EQ(a->eviction_point().Replace(
                  std::make_shared<Graft>("rand-evict", *inst, kUser, 4096)),
              Status::kOk);

    const size_t b_resident_before = b->resident_count();
    const Status s = mem.EvictOne();
    if (!IsOk(s)) {
      break;  // Ran out of evictable pages; invariants still checked below.
    }
    // Wired pages survive everything.
    ASSERT_TRUE(wired0->resident && wired0->wired);
    ASSERT_TRUE(wired1->resident && wired1->wired);
    // If the global victim came from `a`, `b` must be untouched unless the
    // victim itself belonged to `b` (global selection) — the *graft* can
    // never redirect onto `b`: b only ever loses pages via global victim
    // choice, so its count drops by at most 1 per round.
    ASSERT_GE(b->resident_count() + 1, b_resident_before);

    // Refill so rounds stay interesting.
    const uint64_t refill = rng.Range(20, 200);
    (void)mem.Touch(a->id(), refill);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictionFuzzTest,
                         ::testing::Values(11, 29, 307, 0xc0de, 909));

}  // namespace
}  // namespace vino
