// Virtual memory substrate tests: page pool LRU/clock mechanics, faulting,
// resident limits, and the two-level eviction algorithm with grafts.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/mem/memory_system.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

TEST(PagePoolTest, AllocateAndFree) {
  PagePool pool(4);
  EXPECT_EQ(pool.free_count(), 4u);
  Page* p = pool.Allocate(1, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->resident);
  EXPECT_EQ(p->owner, 1u);
  EXPECT_EQ(pool.free_count(), 3u);
  pool.Free(p);
  EXPECT_EQ(pool.free_count(), 4u);
  EXPECT_FALSE(p->resident);
}

TEST(PagePoolTest, ExhaustionReturnsNull) {
  PagePool pool(2);
  EXPECT_NE(pool.Allocate(1, 0), nullptr);
  EXPECT_NE(pool.Allocate(1, 1), nullptr);
  EXPECT_EQ(pool.Allocate(1, 2), nullptr);
}

TEST(PagePoolTest, VictimIsLeastRecentlyUsed) {
  PagePool pool(3);
  Page* a = pool.Allocate(1, 0);
  Page* b = pool.Allocate(1, 1);
  Page* c = pool.Allocate(1, 2);
  // All have their reference bit set; clock clears them in one sweep, then
  // evicts the queue head — the least recently touched.
  pool.Touch(b);
  pool.Touch(c);
  pool.Touch(a);  // Order now: b, c, a.
  Page* victim = pool.SelectVictim();
  EXPECT_EQ(victim, b);
}

TEST(PagePoolTest, WiredPagesNeverVictims) {
  PagePool pool(2);
  Page* a = pool.Allocate(1, 0);
  Page* b = pool.Allocate(1, 1);
  a->wired = true;
  a->referenced = false;
  b->referenced = false;
  EXPECT_EQ(pool.SelectVictim(), b);
  b->wired = true;
  EXPECT_EQ(pool.SelectVictim(), nullptr);
}

TEST(PagePoolTest, SelectVictimFromRestrictsOwner) {
  PagePool pool(4);
  pool.Allocate(1, 0);
  Page* other = pool.Allocate(2, 0);
  EXPECT_EQ(pool.SelectVictimFrom(2), other);
  EXPECT_EQ(pool.SelectVictimFrom(3), nullptr);
}

TEST(PagePoolTest, CaoSwapPlacesOriginalInReplacementSlot) {
  PagePool pool(4);
  Page* a = pool.Allocate(1, 0);
  Page* b = pool.Allocate(1, 1);
  Page* c = pool.Allocate(1, 2);
  // LRU order: a, b, c. The graft protects a, offering c instead: a takes
  // c's slot so it does not gain freshness.
  pool.SwapLruPositions(a, c);
  const auto order = pool.LruOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], b->id);
  EXPECT_EQ(order[1], a->id);
  EXPECT_FALSE(c->linked());
}

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : mem_(8, &txn_, &host_, &ns_) {}

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  MemorySystem mem_;
};

TEST_F(MemorySystemTest, FaultThenHit) {
  VirtualAddressSpace* vas = mem_.CreateVas("app", 4);
  Result<bool> first = mem_.Touch(vas->id(), 0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());  // Fault.
  Result<bool> second = mem_.Touch(vas->id(), 0);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value());  // Hit.
  EXPECT_EQ(mem_.stats().faults, 1u);
}

TEST_F(MemorySystemTest, ResidentLimitEnforcedWithinVas) {
  VirtualAddressSpace* small = mem_.CreateVas("small", 2);
  VirtualAddressSpace* other = mem_.CreateVas("other", 4);
  ASSERT_TRUE(mem_.Touch(other->id(), 0).ok());
  ASSERT_TRUE(mem_.Touch(other->id(), 1).ok());

  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(mem_.Touch(small->id(), i).ok());
  }
  // The small VAS never exceeds its limit...
  EXPECT_LE(small->resident_count(), 2u);
  // ...and its overflow evicted its own pages, not the other app's (Rule 8).
  EXPECT_EQ(other->resident_count(), 2u);
}

TEST_F(MemorySystemTest, PoolExhaustionTriggersGlobalEviction) {
  VirtualAddressSpace* a = mem_.CreateVas("a", 8);
  VirtualAddressSpace* b = mem_.CreateVas("b", 8);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mem_.Touch(a->id(), i).ok());
  }
  // Pool (8 frames) is full; b's fault forces a global eviction.
  ASSERT_TRUE(mem_.Touch(b->id(), 0).ok());
  EXPECT_GE(mem_.stats().evictions, 1u);
  EXPECT_EQ(a->resident_count() + b->resident_count(), 8u);
}

TEST_F(MemorySystemTest, AllWiredMeansNoVictim) {
  VirtualAddressSpace* vas = mem_.CreateVas("wired", 8);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
    ASSERT_EQ(vas->Wire(i), Status::kOk);
  }
  EXPECT_EQ(mem_.EvictOne(), Status::kUnavailable);
}

// Builds an eviction graft that walks the resident list and returns the
// first page not on the hint (pinned) list — the paper's §4.2.2 graft.
std::shared_ptr<Graft> PinningEvictionGraft() {
  // Args: r0=victim, r1=resident addr, r2=resident count,
  //       r3=hint addr, r4=hint count.
  // for each resident page p: if p not in hints: return p. else return victim.
  Asm a("pin-evict");
  auto outer_loop = a.NewLabel();
  auto outer_next = a.NewLabel();
  auto inner_loop = a.NewLabel();
  auto inner_done = a.NewLabel();
  auto pinned = a.NewLabel();
  auto give_up = a.NewLabel();

  // r5 = resident index.
  a.LoadImm(R5, 0);
  a.Bind(outer_loop);
  a.BgeU(R5, R2, give_up);
  // r6 = resident[r5]
  a.ShlI(R7, R5, 3);
  a.Add(R7, R1, R7);
  a.Ld64(R6, R7);
  // Inner scan of hints: r8 = hint index.
  a.LoadImm(R8, 0);
  a.Bind(inner_loop);
  a.BgeU(R8, R4, inner_done);
  a.ShlI(R9, R8, 3);
  a.Add(R9, R3, R9);
  a.Ld64(R10, R9);
  a.Beq(R10, R6, pinned);
  a.AddI(R8, R8, 1);
  a.Jmp(inner_loop);
  a.Bind(inner_done);
  // Not pinned: evict this one.
  a.Mov(R0, R6);
  a.Halt();
  a.Bind(pinned);
  a.Bind(outer_next);
  a.AddI(R5, R5, 1);
  a.Jmp(outer_loop);
  a.Bind(give_up);
  // Everything pinned: accept the global victim.
  a.Halt();  // r0 still holds the victim argument.

  Result<Program> p = a.Finish();
  EXPECT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p);
  EXPECT_TRUE(inst.ok());
  return std::make_shared<Graft>("pin-evict", *inst, kUser, 4096);
}

TEST_F(MemorySystemTest, EvictionGraftProtectsPinnedPages) {
  VirtualAddressSpace* vas = mem_.CreateVas("app", 8);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
  }
  ASSERT_EQ(vas->eviction_point().Replace(PinningEvictionGraft()), Status::kOk);

  // Pin the page backing virtual index 0 (the next global victim).
  Page* important = vas->FindResident(0);
  ASSERT_NE(important, nullptr);
  vas->SetPinnedHints({important->id});

  // Age all pages so the clock picks index 0 first.
  for (uint64_t i = 0; i < 4; ++i) {
    Page* p = vas->FindResident(i);
    ASSERT_NE(p, nullptr);
    p->referenced = false;
  }

  ASSERT_EQ(mem_.EvictOne(), Status::kOk);
  // The pinned page survived; the graft overruled with some other page.
  EXPECT_NE(vas->FindResident(0), nullptr);
  EXPECT_EQ(mem_.stats().graft_overrules, 1u);
  EXPECT_EQ(vas->resident_count(), 3u);
}

TEST_F(MemorySystemTest, GraftChoosingWiredPageIsOverruled) {
  VirtualAddressSpace* vas = mem_.CreateVas("app", 8);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
    vas->FindResident(i)->referenced = false;
  }
  // Graft that always returns the id of the wired page.
  Page* wired_page = vas->FindResident(2);
  ASSERT_EQ(vas->Wire(2), Status::kOk);
  Asm a("bad-evict");
  a.LoadImm(R0, static_cast<int64_t>(wired_page->id)).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(vas->eviction_point().Replace(
                std::make_shared<Graft>("bad-evict", *inst, kUser, 4096)),
            Status::kOk);

  ASSERT_EQ(mem_.EvictOne(), Status::kOk);
  // Verification failed; the original victim went out; the wired page stays.
  EXPECT_TRUE(wired_page->resident);
  EXPECT_EQ(mem_.stats().graft_rejections, 1u);
  EXPECT_EQ(mem_.stats().graft_overrules, 0u);
  EXPECT_EQ(vas->eviction_point().stats().bad_results, 1u);
}

TEST_F(MemorySystemTest, GraftChoosingForeignPageIsOverruled) {
  VirtualAddressSpace* victim_vas = mem_.CreateVas("victim-vas", 8);
  VirtualAddressSpace* other_vas = mem_.CreateVas("other-vas", 8);
  ASSERT_TRUE(mem_.Touch(victim_vas->id(), 0).ok());
  ASSERT_TRUE(mem_.Touch(other_vas->id(), 0).ok());
  victim_vas->FindResident(0)->referenced = false;
  other_vas->FindResident(0)->referenced = false;

  // victim_vas's graft maliciously names other_vas's page.
  Page* foreign = other_vas->FindResident(0);
  Asm a("malicious-evict");
  a.LoadImm(R0, static_cast<int64_t>(foreign->id)).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(victim_vas->eviction_point().Replace(
                std::make_shared<Graft>("malicious-evict", *inst, kUser, 4096)),
            Status::kOk);

  ASSERT_EQ(mem_.EvictOne(), Status::kOk);
  // Rule 8: the foreign application is untouched.
  EXPECT_TRUE(foreign->resident);
  EXPECT_EQ(other_vas->resident_count(), 1u);
  EXPECT_EQ(victim_vas->resident_count(), 0u);
  EXPECT_EQ(mem_.stats().graft_rejections, 1u);
}

TEST_F(MemorySystemTest, PageDaemonSweepsToWatermark) {
  VirtualAddressSpace* vas = mem_.CreateVas("app", 8);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
    vas->FindResident(i)->referenced = false;
  }
  EXPECT_EQ(mem_.pool().free_count(), 0u);
  ASSERT_EQ(mem_.RunPageDaemon(3), Status::kOk);
  EXPECT_GE(mem_.pool().free_count(), 3u);
  EXPECT_EQ(vas->resident_count(), 5u);
}

TEST_F(MemorySystemTest, PageDaemonStallsWhenAllWired) {
  VirtualAddressSpace* vas = mem_.CreateVas("wired", 8);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
    ASSERT_EQ(vas->Wire(i), Status::kOk);
  }
  // Four frames are free already; asking for five requires evicting a
  // wired page, which the daemon refuses.
  EXPECT_EQ(mem_.RunPageDaemon(4), Status::kOk);
  EXPECT_EQ(mem_.RunPageDaemon(5), Status::kUnavailable);
}

TEST_F(MemorySystemTest, PageDaemonTargetClampedToPoolSize) {
  EXPECT_EQ(mem_.RunPageDaemon(10'000), Status::kOk);  // Pool has 8 frames.
  EXPECT_EQ(mem_.pool().free_count(), 8u);
}

TEST_F(MemorySystemTest, CaoSwapAppliedOnOverrule) {
  VirtualAddressSpace* vas = mem_.CreateVas("app", 8);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
    vas->FindResident(i)->referenced = false;
  }
  Page* p0 = vas->FindResident(0);  // Global victim (LRU head).
  Page* p2 = vas->FindResident(2);  // Graft's replacement choice.

  Asm a("choose-p2");
  a.LoadImm(R0, static_cast<int64_t>(p2->id)).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(vas->eviction_point().Replace(
                std::make_shared<Graft>("choose-p2", *inst, kUser, 4096)),
            Status::kOk);

  ASSERT_EQ(mem_.EvictOne(), Status::kOk);
  EXPECT_FALSE(p2->resident);
  // p0 took p2's LRU slot (the tail), not its old head slot.
  const auto order = mem_.pool().LruOrder();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.back(), p0->id);
}

}  // namespace
}  // namespace vino
