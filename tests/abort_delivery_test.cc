// Regression tests for asynchronous abort delivery (paper §3.2).
//
// Two bugs these pin down:
//  1. Stale cross-thread aborts poisoned sibling nested transactions: a
//     posted request carried no transaction identity, Begin() cleared the
//     pending word only at top level, so a watchdog or lock-timeout fire
//     that landed after its victim ended aborted whatever nested
//     transaction the thread ran next. Posts are now tagged with the target
//     transaction id and discarded at consumption when the target is no
//     longer in the thread's active chain.
//  2. A commit-time abort (the asynchronous request beating Commit) lost
//     its per-graft abort-cost sample and posted kInvokeEnd with a lock
//     count of 0 — the wrapper now captures L and G before Commit() so the
//     §4.5 model gets one sample per abort on every path.

#include <gtest/gtest.h>

#include <memory>
#include <span>

#include "src/base/context.h"
#include "src/base/trace.h"
#include "src/graft/function_point.h"
#include "src/graft/graft.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_lock.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kRoot{0, true};

int32_t Reason(Status s) { return static_cast<int32_t>(s); }

TEST(AbortDeliveryTest, StalePostToFinishedSiblingIsDiscarded) {
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* a = manager.Begin();
  const uint64_t a_id = a->id();
  EXPECT_EQ(manager.Commit(a), Status::kOk);

  // A late lock-timeout / watchdog fire aimed at the already-finished
  // nested transaction lands now — after its target ended, before the
  // sibling begins.
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              a_id));

  // The innocent sibling must not inherit the doom.
  Transaction* b = manager.Begin();
  EXPECT_FALSE(TxnManager::AbortPending());
  EXPECT_FALSE(b->abort_requested());
  EXPECT_EQ(manager.Commit(b), Status::kOk);
  EXPECT_EQ(manager.Commit(outer), Status::kOk);
}

TEST(AbortDeliveryTest, StalePostDoesNotTurnSiblingCommitIntoAbort) {
  // Same shape, but the sibling goes straight to Commit without passing a
  // preemption point — the commit-side consumption must discard too.
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* a = manager.Begin();
  const uint64_t a_id = a->id();
  EXPECT_EQ(manager.Commit(a), Status::kOk);
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              a_id));
  Transaction* b = manager.Begin();
  EXPECT_EQ(manager.Commit(b), Status::kOk);
  EXPECT_EQ(manager.Commit(outer), Status::kOk);
  EXPECT_EQ(manager.stats().aborts, 0u);
}

TEST(AbortDeliveryTest, PostTargetingAncestorAbortsInnermost) {
  // The paper's semantics: the victim thread aborts its *innermost*
  // transaction even when the contended lock belongs to an outer one; the
  // chain unwinds one level per (re-)post.
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* inner = manager.Begin();
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              outer->id()));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(inner->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(inner, inner->abort_reason());

  // One level unwound; the still-blocked waiter re-posts against the owner.
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              outer->id()));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(outer->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(outer, outer->abort_reason());
}

TEST(AbortDeliveryTest, WildcardPostStillAbortsInnermost) {
  // Target 0 keeps the legacy thread-policing semantics: whatever is
  // innermost when the post is consumed.
  TxnManager manager;
  Transaction* txn = manager.Begin();
  ASSERT_TRUE(KernelContext::PostAbortRequest(KernelContext::Current().os_id,
                                              Reason(Status::kTxnTimedOut)));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(txn->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(txn, txn->abort_reason());
}

TEST(AbortDeliveryTest, CommitTimeAbortKeepsPerGraftAbortCostSample) {
  trace::SetEnabled(true);

  TxnManager manager;
  HostCallTable host;
  TxnLock lock("attr.lock");

  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t, std::span<const uint64_t>) {
    // The validator runs inside the transaction window, after the native
    // path's abort check and before Commit — the last spot an asynchronous
    // abort can land. Post one aimed at the current transaction.
    KernelContext& ctx = KernelContext::Current();
    KernelContext::PostAbortRequest(ctx.os_id, Reason(Status::kTxnTimedOut),
                                    ctx.txn->id());
    return true;
  };
  FunctionGraftPoint point(
      "attr.point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      config, &manager, &host, nullptr);

  auto graft = std::make_shared<Graft>(
      "locker",
      [&lock](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        EXPECT_EQ(lock.Acquire(), Status::kOk);  // Held at commit: L = 1.
        return 0ull;
      },
      kRoot);
  ASSERT_EQ(point.Replace(graft), Status::kOk);

  EXPECT_EQ(point.Invoke({}), 7u);  // Commit became abort; default ran.
  EXPECT_EQ(graft->aborts(), 1u);
  EXPECT_FALSE(lock.held());

  // The per-graft §4.5 model gained exactly one sample, with L = 1.
  const AbortCostModel::Fitted fit = graft->abort_cost().Fit();
  EXPECT_EQ(fit.samples, 1u);
  EXPECT_DOUBLE_EQ(fit.mean_locks, 1.0);

  // The kInvokeEnd record reports the abort path with the lock count.
  bool found = false;
  for (const trace::TaggedRecord& tr : trace::Snapshot()) {
    if (tr.record.event == static_cast<uint16_t>(trace::Event::kInvokeEnd) &&
        tr.record.tag == static_cast<uint16_t>(trace::PathTag::kAbort) &&
        tr.record.a == graft->trace_id()) {
      EXPECT_EQ(tr.record.a32, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  trace::SetEnabled(false);
}

}  // namespace
}  // namespace vino
