// Regression tests for asynchronous abort delivery (paper §3.2).
//
// Two bugs these pin down:
//  1. Stale cross-thread aborts poisoned sibling nested transactions: a
//     posted request carried no transaction identity, Begin() cleared the
//     pending word only at top level, so a watchdog or lock-timeout fire
//     that landed after its victim ended aborted whatever nested
//     transaction the thread ran next. Posts are now tagged with the target
//     transaction id and discarded at consumption when the target is no
//     longer in the thread's active chain.
//  2. A commit-time abort (the asynchronous request beating Commit) lost
//     its per-graft abort-cost sample and posted kInvokeEnd with a lock
//     count of 0 — the wrapper now captures L and G before Commit() so the
//     §4.5 model gets one sample per abort on every path.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <thread>

#include "src/base/context.h"
#include "src/base/trace.h"
#include "src/graft/function_point.h"
#include "src/graft/graft.h"
#include "src/graft/invocation.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/sfi/threaded_vm.h"
#include "src/sfi/verifier.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_lock.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kRoot{0, true};

int32_t Reason(Status s) { return static_cast<int32_t>(s); }

TEST(AbortDeliveryTest, StalePostToFinishedSiblingIsDiscarded) {
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* a = manager.Begin();
  const uint64_t a_id = a->id();
  EXPECT_EQ(manager.Commit(a), Status::kOk);

  // A late lock-timeout / watchdog fire aimed at the already-finished
  // nested transaction lands now — after its target ended, before the
  // sibling begins.
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              a_id));

  // The innocent sibling must not inherit the doom.
  Transaction* b = manager.Begin();
  EXPECT_FALSE(TxnManager::AbortPending());
  EXPECT_FALSE(b->abort_requested());
  EXPECT_EQ(manager.Commit(b), Status::kOk);
  EXPECT_EQ(manager.Commit(outer), Status::kOk);
}

TEST(AbortDeliveryTest, StalePostDoesNotTurnSiblingCommitIntoAbort) {
  // Same shape, but the sibling goes straight to Commit without passing a
  // preemption point — the commit-side consumption must discard too.
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* a = manager.Begin();
  const uint64_t a_id = a->id();
  EXPECT_EQ(manager.Commit(a), Status::kOk);
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              a_id));
  Transaction* b = manager.Begin();
  EXPECT_EQ(manager.Commit(b), Status::kOk);
  EXPECT_EQ(manager.Commit(outer), Status::kOk);
  EXPECT_EQ(manager.stats().aborts, 0u);
}

TEST(AbortDeliveryTest, PostTargetingAncestorAbortsInnermost) {
  // The paper's semantics: the victim thread aborts its *innermost*
  // transaction even when the contended lock belongs to an outer one; the
  // chain unwinds one level per (re-)post.
  TxnManager manager;
  KernelContext& ctx = KernelContext::Current();
  Transaction* outer = manager.Begin();
  Transaction* inner = manager.Begin();
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              outer->id()));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(inner->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(inner, inner->abort_reason());

  // One level unwound; the still-blocked waiter re-posts against the owner.
  ASSERT_TRUE(KernelContext::PostAbortRequest(ctx.os_id,
                                              Reason(Status::kTxnTimedOut),
                                              outer->id()));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(outer->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(outer, outer->abort_reason());
}

TEST(AbortDeliveryTest, WildcardPostStillAbortsInnermost) {
  // Target 0 keeps the legacy thread-policing semantics: whatever is
  // innermost when the post is consumed.
  TxnManager manager;
  Transaction* txn = manager.Begin();
  ASSERT_TRUE(KernelContext::PostAbortRequest(KernelContext::Current().os_id,
                                              Reason(Status::kTxnTimedOut)));
  EXPECT_TRUE(TxnManager::AbortPending());
  EXPECT_EQ(txn->abort_reason(), Status::kTxnTimedOut);
  manager.Abort(txn, txn->abort_reason());
}

TEST(AbortDeliveryTest, CommitTimeAbortKeepsPerGraftAbortCostSample) {
  trace::SetEnabled(true);

  TxnManager manager;
  HostCallTable host;
  TxnLock lock("attr.lock");

  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t, std::span<const uint64_t>) {
    // The validator runs inside the transaction window, after the native
    // path's abort check and before Commit — the last spot an asynchronous
    // abort can land. Post one aimed at the current transaction.
    KernelContext& ctx = KernelContext::Current();
    KernelContext::PostAbortRequest(ctx.os_id, Reason(Status::kTxnTimedOut),
                                    ctx.txn->id());
    return true;
  };
  FunctionGraftPoint point(
      "attr.point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      config, &manager, &host, nullptr);

  auto graft = std::make_shared<Graft>(
      "locker",
      [&lock](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        EXPECT_EQ(lock.Acquire(), Status::kOk);  // Held at commit: L = 1.
        return 0ull;
      },
      kRoot);
  ASSERT_EQ(point.Replace(graft), Status::kOk);

  EXPECT_EQ(point.Invoke({}), 7u);  // Commit became abort; default ran.
  EXPECT_EQ(graft->aborts(), 1u);
  EXPECT_FALSE(lock.held());

  // The per-graft §4.5 model gained exactly one sample, with L = 1.
  const AbortCostModel::Fitted fit = graft->abort_cost().Fit();
  EXPECT_EQ(fit.samples, 1u);
  EXPECT_DOUBLE_EQ(fit.mean_locks, 1.0);

  // The kInvokeEnd record reports the abort path with the lock count.
  bool found = false;
  for (const trace::TaggedRecord& tr : trace::Snapshot()) {
    if (tr.record.event == static_cast<uint16_t>(trace::Event::kInvokeEnd) &&
        tr.record.tag == static_cast<uint16_t>(trace::PathTag::kAbort) &&
        tr.record.a == graft->trace_id()) {
      EXPECT_EQ(tr.record.a32, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  trace::SetEnabled(false);
}

// ---------------------------------------------------------------------
// Tier-1 asynchronous abort delivery. The direct-threaded engine replaced
// the interpreter's per-iteration poll with its own countdown; these pin
// down that a cross-thread PostAbortRequest still lands mid-program on
// Tier 1, and that the PR 6 poll_interval==0 clamp (0 means "poll every
// instruction", not "poll after ~4B instructions") survived the rewrite.
// ---------------------------------------------------------------------

// A graft program that announces itself through a host call (publishing
// its thread's os_id and innermost transaction id), then spins forever.
// The only way out is an asynchronous abort — or fuel exhaustion, which
// the tests treat as failure evidence.
struct SpinningGraft {
  HostCallTable host;
  std::atomic<bool> started{false};
  std::atomic<uint64_t> os_id{0};
  std::atomic<uint64_t> txn_id{0};
  std::shared_ptr<Graft> graft;

  SpinningGraft() {
    const uint32_t sync_id = host.Register(
        "test.announce",
        [this](HostCallContext&) -> Result<uint64_t> {
          KernelContext& kctx = KernelContext::Current();
          os_id.store(kctx.os_id, std::memory_order_relaxed);
          txn_id.store(kctx.txn->id(), std::memory_order_relaxed);
          started.store(true, std::memory_order_release);
          return 0ull;
        },
        true);

    Asm a("tier1-spinner");
    auto top = a.NewLabel();
    a.LoadImm(R1, sync_id);
    a.CallR(R1);
    a.LoadImm(R2, 1);
    a.Bind(top);
    a.Add(R3, R3, R2);
    a.Jmp(top);
    Result<Program> inst = Instrument(*a.Finish(), MisfitOptions{16});
    EXPECT_TRUE(inst.ok());
    Program p = *inst;
    VerifierOptions voptions;
    voptions.host = &host;
    EXPECT_TRUE(VerifySandbox(p, voptions).ok());
    p.verified = true;
    p.compiled = CompileThreaded(p);
    EXPECT_NE(p.compiled, nullptr);
    graft = std::make_shared<Graft>("tier1-spinner", std::move(p), kRoot, 4096);
  }
};

TEST(AbortDeliveryTest, CrossThreadPostLandsMidProgramOnTier1) {
  TxnManager manager;
  SpinningGraft spin;

  // Default poll cadence; fuel bounded so a lost abort fails the test with
  // kSfiFuelExhausted instead of hanging it.
  GraftExecContext exec(&spin.host, /*fuel=*/50'000'000, /*poll_interval=*/64);

  std::thread poster([&spin] {
    while (!spin.started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(KernelContext::PostAbortRequest(
        spin.os_id.load(std::memory_order_relaxed),
        Reason(Status::kTxnTimedOut),
        spin.txn_id.load(std::memory_order_relaxed)));
  });

  const InvocationOutcome outcome =
      RunGraftInvocation(manager, spin.graft, {}, exec);
  poster.join();

  // The engine reports a poll-consumed abort as kTxnAborted (the posted
  // reason was consumed into the transaction); what matters here is that it
  // is an abort, not fuel exhaustion or a completed run.
  EXPECT_EQ(outcome.status, Status::kTxnAborted);
  EXPECT_EQ(spin.graft->aborts(), 1u);
  // The abort was consumed by the Tier-1 engine, not an interpreter
  // fallback: the invocation is attributed to tier 1.
  EXPECT_EQ(spin.graft->tier_runs(ExecTier::kTier1), 1u);
  EXPECT_EQ(spin.graft->tier_runs(ExecTier::kTier0), 0u);
}

TEST(AbortDeliveryTest, Tier1PollIntervalZeroClampsToEveryInstruction) {
  // PR 6 regression, Tier-1 edition: poll_interval == 0 must clamp to 1.
  // An unclamped countdown would wrap and never poll, so the spinner would
  // burn its whole fuel budget and return kSfiFuelExhausted instead of the
  // posted kTxnTimedOut.
  TxnManager manager;
  SpinningGraft spin;

  GraftExecContext exec(&spin.host, /*fuel=*/20'000'000, /*poll_interval=*/0);

  std::thread poster([&spin] {
    while (!spin.started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(KernelContext::PostAbortRequest(
        spin.os_id.load(std::memory_order_relaxed),
        Reason(Status::kTxnTimedOut),
        spin.txn_id.load(std::memory_order_relaxed)));
  });

  const InvocationOutcome outcome =
      RunGraftInvocation(manager, spin.graft, {}, exec);
  poster.join();

  EXPECT_EQ(outcome.status, Status::kTxnAborted);
  EXPECT_EQ(spin.graft->tier_runs(ExecTier::kTier1), 1u);
}

}  // namespace
}  // namespace vino
