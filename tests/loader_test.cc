// GraftLoader tests: the dynamic linker's five load-time checks and the
// name-based install flows of Figures 1 and 2.

#include <gtest/gtest.h>

#include "src/graft/loader.h"
#include "src/sfi/assembler.h"
#include "src/sfi/exec_engine.h"
#include "src/sfi/isa.h"
#include "src/sfi/misfit.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};
constexpr GraftIdentity kRoot{0, true};

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest()
      : authority_("trusted-misfit-key"),
        loader_(&ns_, &host_, SigningAuthority("trusted-misfit-key")) {
    callable_id_ = host_.Register(
        "k.ok", [](HostCallContext&) -> Result<uint64_t> { return 1ull; }, true);
    internal_id_ = host_.Register(
        "k.secret", [](HostCallContext&) -> Result<uint64_t> { return 2ull; },
        false);
  }

  SignedGraft MakeSigned(uint32_t call_id = 0) {
    Asm a("test-graft");
    if (call_id != 0) {
      a.Call(call_id);
    }
    a.LoadImm(R0, 5).Halt();
    Result<Program> p = a.Finish();
    EXPECT_TRUE(p.ok());
    Result<Program> inst = Instrument(*p);
    EXPECT_TRUE(inst.ok());
    Result<SignedGraft> sg = authority_.Sign(*inst);
    EXPECT_TRUE(sg.ok());
    return *sg;
  }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  SigningAuthority authority_;
  GraftLoader loader_;
  uint32_t callable_id_ = 0;
  uint32_t internal_id_ = 0;
};

TEST_F(LoaderTest, LoadsValidGraft) {
  Result<std::shared_ptr<Graft>> graft =
      loader_.Load(MakeSigned(callable_id_), {kUser, nullptr});
  ASSERT_TRUE(graft.ok());
  EXPECT_EQ((*graft)->name(), "test-graft");
  EXPECT_FALSE((*graft)->is_native());
  // Fresh grafts cannot allocate anything (zero limits, §3.2).
  EXPECT_EQ((*graft)->account().Charge(ResourceType::kMemory, 1),
            Status::kLimitExceeded);
}

TEST_F(LoaderTest, RejectsTamperedSignature) {
  SignedGraft sg = MakeSigned();
  sg.program.code[0].imm = 1234;
  EXPECT_EQ(loader_.Load(sg, {kUser, nullptr}).status(), Status::kBadSignature);
}

TEST_F(LoaderTest, RejectsWrongAuthority) {
  // Signed by an authority whose key the kernel does not trust.
  SigningAuthority rogue("rogue-key");
  Asm a("rogue");
  a.LoadImm(R0, 1).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  Result<SignedGraft> sg = rogue.Sign(*inst);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(loader_.Load(*sg, {kUser, nullptr}).status(), Status::kBadSignature);
}

TEST_F(LoaderTest, RejectsDirectCallToInternalFunction) {
  // Rule 7: a graft that direct-calls a non-graft-callable function is
  // refused at link time — even though its signature is valid.
  EXPECT_EQ(loader_.Load(MakeSigned(internal_id_), {kUser, nullptr}).status(),
            Status::kIllegalCall);
}

TEST_F(LoaderTest, SponsorBilling) {
  ResourceAccount installer("installer");
  installer.SetLimit(ResourceType::kMemory, 128);
  Result<std::shared_ptr<Graft>> graft =
      loader_.Load(MakeSigned(), {kUser, &installer});
  ASSERT_TRUE(graft.ok());
  EXPECT_EQ((*graft)->account().Charge(ResourceType::kMemory, 64), Status::kOk);
  EXPECT_EQ(installer.usage(ResourceType::kMemory), 64u);
}

TEST_F(LoaderTest, InstallFunctionByName) {
  FunctionGraftPoint point(
      "file.read-ahead", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      FunctionGraftPoint::Config{}, &txn_, &host_, &ns_);

  Result<std::shared_ptr<Graft>> graft = loader_.Load(MakeSigned(), {kUser, nullptr});
  ASSERT_TRUE(graft.ok());

  EXPECT_EQ(loader_.InstallFunction("no.such.point", *graft), Status::kNotFound);
  EXPECT_EQ(loader_.InstallFunction("file.read-ahead", *graft), Status::kOk);
  EXPECT_TRUE(point.grafted());
  EXPECT_EQ(point.Invoke({}), 5u);
}

TEST_F(LoaderTest, InstallEventByName) {
  EventGraftPoint point("net.tcp.80.connection", EventGraftPoint::Config{}, &txn_,
                        &host_, &ns_);
  Result<std::shared_ptr<Graft>> graft = loader_.Load(MakeSigned(), {kUser, nullptr});
  ASSERT_TRUE(graft.ok());
  EXPECT_EQ(loader_.InstallEvent("net.tcp.80.connection", *graft, 1), Status::kOk);
  EXPECT_EQ(point.handler_count(), 1u);
  EXPECT_EQ(loader_.InstallEvent("nope", *graft, 1), Status::kNotFound);
}

TEST_F(LoaderTest, RestrictedPointEnforcedThroughLoader) {
  FunctionGraftPoint::Config config;
  config.restricted = true;
  FunctionGraftPoint point(
      "vm.global-eviction", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      config, &txn_, &host_, &ns_);

  Result<std::shared_ptr<Graft>> user_graft =
      loader_.Load(MakeSigned(), {kUser, nullptr});
  ASSERT_TRUE(user_graft.ok());
  EXPECT_EQ(loader_.InstallFunction("vm.global-eviction", *user_graft),
            Status::kRestrictedPoint);

  Result<std::shared_ptr<Graft>> root_graft =
      loader_.Load(MakeSigned(), {kRoot, nullptr});
  ASSERT_TRUE(root_graft.ok());
  EXPECT_EQ(loader_.InstallFunction("vm.global-eviction", *root_graft), Status::kOk);
}

TEST_F(LoaderTest, NativeUnsafeRequiresPrivilege) {
  auto fn = [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
    return 0ull;
  };
  EXPECT_EQ(loader_.LoadNativeUnsafe("n", fn, {kUser, nullptr}).status(),
            Status::kPermissionDenied);
  EXPECT_TRUE(loader_.LoadNativeUnsafe("n", fn, {kRoot, nullptr}).ok());
}

TEST_F(LoaderTest, RejectsForgedManifestDirectCall) {
  // A compromised toolchain signs hand-written "instrumented" code whose
  // manifest declares only the benign callable id while the code also calls
  // the internal one. The pre-verifier loader link-checked the declared
  // list and accepted this; the verifier stage reads the code.
  Program p;
  p.name = "forged";
  p.instrumented = true;
  p.sandbox_log2 = 16;
  p.code = {
      Instruction{Op::kCall, 0, 0, 0, callable_id_},
      Instruction{Op::kCall, 0, 0, 0, internal_id_},
      Instruction{Op::kHalt, 0, 0, 0, 0},
  };
  p.direct_call_ids = {callable_id_};
  Result<SignedGraft> sg = authority_.Sign(p);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(loader_.Load(*sg, {kUser, nullptr}).status(), Status::kIllegalCall);
}

TEST_F(LoaderTest, RejectsForgedUncheckedIndirectCall) {
  // Same threat model, register-indirect flavor: a kCallR the "instrumenter"
  // left unrewritten would bypass the runtime callable probe entirely.
  Program p;
  p.name = "forged";
  p.instrumented = true;
  p.sandbox_log2 = 16;
  p.code = {
      Instruction{Op::kLoadImm, 1, 0, 0, internal_id_},
      Instruction{Op::kCallR, 0, 1, 0, 0},
      Instruction{Op::kHalt, 0, 0, 0, 0},
  };
  Result<SignedGraft> sg = authority_.Sign(p);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(loader_.Load(*sg, {kUser, nullptr}).status(),
            Status::kVerifyFailed);
}

TEST_F(LoaderTest, LoadedGraftsAreMarkedVerified) {
  // The verified bit is a loader-session fact, never a container field:
  // it exists only on programs this loader's own verifier passed.
  Result<std::shared_ptr<Graft>> graft =
      loader_.Load(MakeSigned(callable_id_), {kUser, nullptr});
  ASSERT_TRUE(graft.ok());
  EXPECT_TRUE((*graft)->verified());
  // Tier selection rides the same load: a verified program carries the
  // Tier-1 pre-decoded artifact — unless VINO_EXEC_TIER=0 pins the process
  // to the interpreter, in which case the loader must not compile at all.
  if (MaxExecTier() >= ExecTier::kTier1) {
    EXPECT_NE((*graft)->program().compiled, nullptr);
  } else {
    EXPECT_EQ((*graft)->program().compiled, nullptr);
  }
}

TEST_F(LoaderTest, RejectsRawProgramEvenIfSomehowSigned) {
  // Defence in depth: construct a SignedGraft whose program claims to be
  // instrumented but is structurally raw — covered by signature check; and
  // an uninstrumented program with a forged flag cleared.
  SignedGraft sg = MakeSigned();
  sg.program.instrumented = false;
  EXPECT_EQ(loader_.Load(sg, {kUser, nullptr}).status(), Status::kBadSignature);
}

}  // namespace
}  // namespace vino
