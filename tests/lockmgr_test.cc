// Lock manager case-study tests (Figures 4 and 5): both implementations
// must agree under the default policies; the indirected manager must honour
// replaced policies.

#include <gtest/gtest.h>

#include "src/lockmgr/lock_manager.h"

namespace vino {
namespace {

TEST(LockModeTest, Compatibility) {
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
}

template <typename Manager>
class LockManagerTest : public ::testing::Test {
 protected:
  Manager mgr_;
};

using Managers = ::testing::Types<SimpleLockManager, PolicyLockManager>;
TYPED_TEST_SUITE(LockManagerTest, Managers);

TYPED_TEST(LockManagerTest, SharedReadersCoexist) {
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 101, LockMode::kShared), Status::kOk);
  EXPECT_TRUE(this->mgr_.Holds(1, 100));
  EXPECT_TRUE(this->mgr_.Holds(1, 101));
}

TYPED_TEST(LockManagerTest, WriterBlocksBehindReader) {
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_FALSE(this->mgr_.Holds(1, 200));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 1u);
}

TYPED_TEST(LockManagerTest, ReleasePromotesWaiter) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  // Both shared waiters promoted together.
  EXPECT_TRUE(this->mgr_.Holds(1, 200));
  EXPECT_TRUE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 0u);
}

TYPED_TEST(LockManagerTest, FifoPromotionStopsAtConflict) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  // Only the first (exclusive) waiter is promoted.
  EXPECT_TRUE(this->mgr_.Holds(1, 200));
  EXPECT_FALSE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 1u);
}

TYPED_TEST(LockManagerTest, DoubleAcquireRejected) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kAlreadyExists);
}

TYPED_TEST(LockManagerTest, ReleaseOfUnheldFails) {
  EXPECT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kNotFound);
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.ReleaseLock(1, 999), Status::kNotFound);
}

TYPED_TEST(LockManagerTest, ResourcesIndependent) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(2, 200, LockMode::kExclusive), Status::kOk);
}

TEST(ReaderPriorityTest, DefaultPolicyBargesPastWaitingWriter) {
  // The policy decision Figure 4 hard-codes: "any incoming lock request can
  // be granted if it does not conflict with any holders, ignoring the locks
  // on the wait list (e.g., it implements a reader priority locking
  // protocol)".
  SimpleLockManager mgr;
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // A new reader barges past the waiting writer.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kOk);
}

TEST(PolicyTest, FairGrantPolicyPreventsBarging) {
  PolicyLockManager mgr;
  mgr.SetGrantPolicy(&PolicyLockManager::FairGrantPolicy);
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // Under the fair policy the new reader queues behind the writer.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kBusy);
  EXPECT_EQ(mgr.WaiterCount(1), 2u);
}

TEST(PolicyTest, QueuePolicyControlsInsertionOrder) {
  PolicyLockManager mgr;
  // LIFO queueing: newest waiter first.
  mgr.SetQueuePolicy([](const LockState&, const LockRequest&) -> size_t { return 0; });
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr.GetLock(1, 201, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr.ReleaseLock(1, 100), Status::kOk);
  EXPECT_TRUE(mgr.Holds(1, 201));  // Last in, first out.
  EXPECT_FALSE(mgr.Holds(1, 200));
}

TEST(PolicyTest, MalformedQueuePolicyOutputClamped) {
  PolicyLockManager mgr;
  mgr.SetQueuePolicy([](const LockState&, const LockRequest&) -> size_t {
    return 1'000'000;  // Way out of range.
  });
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_EQ(mgr.WaiterCount(1), 1u);  // Clamped to append, not a crash.
}

TEST(PolicyTest, NullRestoresDefault) {
  PolicyLockManager mgr;
  mgr.SetGrantPolicy(&PolicyLockManager::FairGrantPolicy);
  mgr.SetGrantPolicy(nullptr);
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // Default (reader priority) again: barging allowed.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kOk);
}

}  // namespace
}  // namespace vino
