// Lock manager case-study tests (Figures 4 and 5): both implementations
// must agree under the default policies; the indirected manager must honour
// replaced policies.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/lockmgr/lock_manager.h"

namespace vino {
namespace {

TEST(LockModeTest, Compatibility) {
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
}

template <typename Manager>
class LockManagerTest : public ::testing::Test {
 protected:
  Manager mgr_;
};

using Managers = ::testing::Types<SimpleLockManager, PolicyLockManager>;
TYPED_TEST_SUITE(LockManagerTest, Managers);

TYPED_TEST(LockManagerTest, SharedReadersCoexist) {
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 101, LockMode::kShared), Status::kOk);
  EXPECT_TRUE(this->mgr_.Holds(1, 100));
  EXPECT_TRUE(this->mgr_.Holds(1, 101));
}

TYPED_TEST(LockManagerTest, WriterBlocksBehindReader) {
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_FALSE(this->mgr_.Holds(1, 200));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 1u);
}

TYPED_TEST(LockManagerTest, ReleasePromotesWaiter) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  // Both shared waiters promoted together.
  EXPECT_TRUE(this->mgr_.Holds(1, 200));
  EXPECT_TRUE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 0u);
}

TYPED_TEST(LockManagerTest, FifoPromotionStopsAtConflict) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  // Only the first (exclusive) waiter is promoted.
  EXPECT_TRUE(this->mgr_.Holds(1, 200));
  EXPECT_FALSE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 1u);
}

TYPED_TEST(LockManagerTest, DoubleAcquireRejected) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kAlreadyExists);
}

TYPED_TEST(LockManagerTest, ReleaseOfUnheldFails) {
  EXPECT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kNotFound);
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.ReleaseLock(1, 999), Status::kNotFound);
}

TYPED_TEST(LockManagerTest, ResourcesIndependent) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(this->mgr_.GetLock(2, 200, LockMode::kExclusive), Status::kOk);
}

TEST(ReaderPriorityTest, DefaultPolicyBargesPastWaitingWriter) {
  // The policy decision Figure 4 hard-codes: "any incoming lock request can
  // be granted if it does not conflict with any holders, ignoring the locks
  // on the wait list (e.g., it implements a reader priority locking
  // protocol)".
  SimpleLockManager mgr;
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // A new reader barges past the waiting writer.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kOk);
}

TEST(PolicyTest, FairGrantPolicyPreventsBarging) {
  PolicyLockManager mgr;
  mgr.SetGrantPolicy(&PolicyLockManager::FairGrantPolicy);
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // Under the fair policy the new reader queues behind the writer.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kBusy);
  EXPECT_EQ(mgr.WaiterCount(1), 2u);
}

TEST(PolicyTest, QueuePolicyControlsInsertionOrder) {
  PolicyLockManager mgr;
  // LIFO queueing: newest waiter first.
  mgr.SetQueuePolicy([](const LockState&, const LockRequest&) -> size_t { return 0; });
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr.GetLock(1, 201, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(mgr.ReleaseLock(1, 100), Status::kOk);
  EXPECT_TRUE(mgr.Holds(1, 201));  // Last in, first out.
  EXPECT_FALSE(mgr.Holds(1, 200));
}

TEST(PolicyTest, MalformedQueuePolicyOutputClamped) {
  PolicyLockManager mgr;
  mgr.SetQueuePolicy([](const LockState&, const LockRequest&) -> size_t {
    return 1'000'000;  // Way out of range.
  });
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_EQ(mgr.WaiterCount(1), 1u);  // Clamped to append, not a crash.
}

TEST(PolicyTest, NullRestoresDefault) {
  PolicyLockManager mgr;
  mgr.SetGrantPolicy(&PolicyLockManager::FairGrantPolicy);
  mgr.SetGrantPolicy(nullptr);
  ASSERT_EQ(mgr.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(mgr.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  // Default (reader priority) again: barging allowed.
  EXPECT_EQ(mgr.GetLock(1, 101, LockMode::kShared), Status::kOk);
}

// --- CancelWait: a timed-out waiter must not strand later grants ---------

TYPED_TEST(LockManagerTest, CancelWaitRemovesQueuedRequest) {
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  EXPECT_EQ(this->mgr_.CancelWait(1, 200), Status::kOk);
  EXPECT_EQ(this->mgr_.WaiterCount(1), 0u);
  EXPECT_FALSE(this->mgr_.Holds(1, 200));
}

TYPED_TEST(LockManagerTest, CancelledFrontWaiterUnblocksThoseBehindIt) {
  // The PR-9 anomaly: promotion is FIFO and stops at the first conflict, so
  // an abandoned exclusive waiter at the front of the queue used to strand
  // every compatible waiter behind it forever.
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  // 200 promoted; 201 waits behind it.
  ASSERT_TRUE(this->mgr_.Holds(1, 200));
  ASSERT_FALSE(this->mgr_.Holds(1, 201));
  // 200's requester times out and withdraws — CancelWait doubles as the
  // atomic "release if the grant raced in" path, and must promote 201.
  EXPECT_EQ(this->mgr_.CancelWait(1, 200), Status::kOk);
  EXPECT_TRUE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 0u);
}

TYPED_TEST(LockManagerTest, CancelledMidQueueWaiterPromotesCompatibleRun) {
  // holders=[excl 100], waiters=[shared 200, excl 300, shared 201]: when
  // 300 gives up, nothing promotes yet (100 still holds); when 100 then
  // releases, the whole shared run is granted together.
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  ASSERT_EQ(this->mgr_.GetLock(1, 200, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 300, LockMode::kExclusive), Status::kBusy);
  ASSERT_EQ(this->mgr_.GetLock(1, 201, LockMode::kShared), Status::kBusy);
  ASSERT_EQ(this->mgr_.CancelWait(1, 300), Status::kOk);
  EXPECT_EQ(this->mgr_.WaiterCount(1), 2u);
  ASSERT_EQ(this->mgr_.ReleaseLock(1, 100), Status::kOk);
  EXPECT_TRUE(this->mgr_.Holds(1, 200));
  EXPECT_TRUE(this->mgr_.Holds(1, 201));
  EXPECT_EQ(this->mgr_.WaiterCount(1), 0u);
}

TYPED_TEST(LockManagerTest, CancelWaitOfUnknownHolderFails) {
  EXPECT_EQ(this->mgr_.CancelWait(1, 100), Status::kNotFound);
  ASSERT_EQ(this->mgr_.GetLock(1, 100, LockMode::kShared), Status::kOk);
  EXPECT_EQ(this->mgr_.CancelWait(1, 999), Status::kNotFound);
}

TEST(PolicyTest, DenyOnIdleLockCannotStrandTheQueue) {
  // A pathological policy denies everything. With no holders there is no
  // future release to promote the queue, so GetLock itself must promote —
  // kernel liveness outranks policy.
  PolicyLockManager mgr;
  mgr.SetGrantPolicy([](const LockState&, const LockRequest&) { return false; });
  EXPECT_EQ(mgr.GetLock(1, 100, LockMode::kExclusive), Status::kOk);
  EXPECT_TRUE(mgr.Holds(1, 100));
}

// --- Sharded table under concurrency -------------------------------------

TEST(ShardedLockTest, ConcurrentDisjointResourcesStayConsistent) {
  SimpleLockManager mgr;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mgr, t] {
      const LockHolderId holder = 1000 + static_cast<LockHolderId>(t);
      for (int i = 0; i < kIterations; ++i) {
        const LockResourceId resource =
            static_cast<LockResourceId>((t * kIterations + i) % 64);
        const LockMode mode =
            (i % 3 == 0) ? LockMode::kExclusive : LockMode::kShared;
        const Status got = mgr.GetLock(resource, holder, mode);
        if (got == Status::kOk) {
          ASSERT_TRUE(mgr.Holds(resource, holder));
          ASSERT_EQ(mgr.ReleaseLock(resource, holder), Status::kOk);
        } else {
          ASSERT_EQ(got, Status::kBusy);
          // Poll briefly, then withdraw like a timed-out TxnLock waiter.
          bool granted = false;
          for (int spin = 0; spin < 100 && !granted; ++spin) {
            granted = mgr.Holds(resource, holder);
          }
          if (granted) {
            ASSERT_EQ(mgr.ReleaseLock(resource, holder), Status::kOk);
          } else {
            // Queued, so we are in waiters or (if the promotion raced the
            // poll) in holders; CancelWait handles both atomically.
            ASSERT_EQ(mgr.CancelWait(resource, holder), Status::kOk);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Quiesced: every resource drained — no holders, no stranded waiters.
  for (LockResourceId r = 0; r < 64; ++r) {
    EXPECT_EQ(mgr.WaiterCount(r), 0u) << r;
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_FALSE(mgr.Holds(r, 1000 + static_cast<LockHolderId>(t)));
    }
  }
}

}  // namespace
}  // namespace vino
