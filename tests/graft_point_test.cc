// FunctionGraftPoint and EventGraftPoint tests: the invocation wrapper,
// abort-and-fallback behaviour, forcible removal, result validation, and
// event handler ordering.

#include <gtest/gtest.h>

#include <memory>
#include <atomic>
#include <thread>
#include <vector>

#include "src/graft/event_point.h"
#include "src/graft/function_point.h"
#include "src/graft/namespace.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};
constexpr GraftIdentity kRoot{0, true};

class GraftPointTest : public ::testing::Test {
 protected:
  GraftPointTest() {
    noop_id_ = host_.Register(
        "k.noop", [](HostCallContext&) -> Result<uint64_t> { return 0ull; }, true);
    internal_id_ = host_.Register(
        "k.internal", [](HostCallContext&) -> Result<uint64_t> { return 1ull; },
        false);
  }

  // Builds an instrumented graft that returns `value`.
  std::shared_ptr<Graft> ConstGraft(uint64_t value) {
    Asm a("const-graft");
    a.LoadImm(R0, static_cast<int64_t>(value)).Halt();
    Result<Program> p = a.Finish();
    EXPECT_TRUE(p.ok());
    Result<Program> inst = Instrument(*p);
    EXPECT_TRUE(inst.ok());
    return std::make_shared<Graft>("const-graft", *inst, kUser, 4096);
  }

  // A graft that loops forever (misbehaving).
  std::shared_ptr<Graft> SpinGraft() {
    Asm a("spin-graft");
    auto top = a.NewLabel();
    a.Bind(top);
    a.Jmp(top);
    Result<Program> p = a.Finish();
    EXPECT_TRUE(p.ok());
    Result<Program> inst = Instrument(*p);
    EXPECT_TRUE(inst.ok());
    return std::make_shared<Graft>("spin-graft", *inst, kUser, 4096);
  }

  FunctionGraftPoint::Config DefaultConfig() { return FunctionGraftPoint::Config{}; }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  uint32_t noop_id_ = 0;
  uint32_t internal_id_ = 0;
};

TEST_F(GraftPointTest, UngraftedInvokesDefault) {
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(txn_.stats().begins, 0u);  // VINO path: no transaction.
}

TEST_F(GraftPointTest, GraftReplacesDefault) {
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(ConstGraft(42)), Status::kOk);
  EXPECT_TRUE(point.grafted());
  EXPECT_EQ(point.Invoke({}), 42u);
  EXPECT_EQ(txn_.stats().begins, 1u);
  EXPECT_EQ(txn_.stats().commits, 1u);
}

TEST_F(GraftPointTest, SecondReplaceIsBusy) {
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(ConstGraft(1)), Status::kOk);
  EXPECT_EQ(point.Replace(ConstGraft(2)), Status::kBusy);
  point.Remove();
  EXPECT_EQ(point.Replace(ConstGraft(2)), Status::kOk);
}

TEST_F(GraftPointTest, RestrictedPointRejectsUnprivileged) {
  FunctionGraftPoint::Config config;
  config.restricted = true;
  FunctionGraftPoint point(
      "global.policy", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      config, &txn_, &host_, &ns_);
  EXPECT_EQ(point.Replace(ConstGraft(1)), Status::kRestrictedPoint);

  Asm a("root-graft");
  a.LoadImm(R0, 9).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p);
  ASSERT_TRUE(inst.ok());
  auto root_graft = std::make_shared<Graft>("root-graft", *inst, kRoot, 4096);
  EXPECT_EQ(point.Replace(root_graft), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 9u);
}

TEST_F(GraftPointTest, MisbehavingGraftAbortedRemovedAndDefaulted) {
  FunctionGraftPoint::Config config;
  config.fuel = 10'000;  // Bound the spin.
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; }, config,
      &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(SpinGraft()), Status::kOk);

  // Invocation: graft exhausts fuel -> abort -> forcible removal -> default.
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(point.stats().graft_aborts, 1u);
  EXPECT_EQ(point.stats().forcible_removals, 1u);
  EXPECT_EQ(txn_.stats().aborts, 1u);

  // Next invocation is the clean VINO path again.
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_EQ(txn_.stats().begins, 1u);  // No new transaction.
}

TEST_F(GraftPointTest, AbortUndoesKernelStateChanges) {
  static uint64_t kernel_state = 5;
  kernel_state = 5;
  // Graft-callable accessor that mutates kernel state with undo logging,
  // then a graft that calls it and traps.
  const uint32_t set_id = host_.Register(
      "k.set_state",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        TxnSet(&kernel_state, ctx.args[0]);
        return 0ull;
      },
      true);

  Asm a("mutate-then-trap");
  a.LoadImm(R0, 99);
  a.Call(set_id);
  a.LoadImm(R1, static_cast<int64_t>(noop_id_));  // Fine so far...
  a.CallR(R1);
  a.LoadImm(R1, static_cast<int64_t>(internal_id_));  // ...then illegal.
  a.CallR(R1);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p);
  ASSERT_TRUE(inst.ok());
  auto graft = std::make_shared<Graft>("mutator", *inst, kUser, 4096);

  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(graft), Status::kOk);

  EXPECT_EQ(point.Invoke({}), 7u);        // Fell back to default.
  EXPECT_EQ(kernel_state, 5u);            // Mutation rolled back.
  EXPECT_FALSE(point.grafted());          // Forcibly removed.
  EXPECT_EQ(point.stats().graft_aborts, 1u);
}

TEST_F(GraftPointTest, ValidatorRejectsBadResultUsesDefault) {
  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t result, std::span<const uint64_t>) {
    return result < 10;
  };
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 3; }, config,
      &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(ConstGraft(1000)), Status::kOk);

  EXPECT_EQ(point.Invoke({}), 3u);  // Bad result ignored; default used.
  EXPECT_EQ(point.stats().bad_results, 1u);
  EXPECT_TRUE(point.grafted());  // Not removed (max_bad_results == 0).
}

TEST_F(GraftPointTest, BadResultStrikesRemoveGraft) {
  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t result, std::span<const uint64_t>) {
    return result < 10;
  };
  config.max_bad_results = 3;
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 3; }, config,
      &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(ConstGraft(1000)), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 3u);
  EXPECT_EQ(point.Invoke({}), 3u);
  EXPECT_TRUE(point.grafted());
  EXPECT_EQ(point.Invoke({}), 3u);  // Third strike.
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(point.stats().forcible_removals, 1u);
}

TEST_F(GraftPointTest, NativeGraftRunsUnsafePath) {
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  auto native = std::make_shared<Graft>(
      "native",
      [](std::span<const uint64_t> args, MemoryImage*) -> Result<uint64_t> {
        return args.empty() ? 0 : args[0] * 2;
      },
      kRoot);
  ASSERT_EQ(point.Replace(native), Status::kOk);
  const std::vector<uint64_t> args{21};
  EXPECT_EQ(point.Invoke(args), 42u);
  EXPECT_EQ(txn_.stats().commits, 1u);  // Unsafe path still transactional.
}

TEST_F(GraftPointTest, NativeGraftAbortViaStatus) {
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  auto native = std::make_shared<Graft>(
      "native-fail",
      [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        return Status::kTxnAborted;
      },
      kRoot);
  ASSERT_EQ(point.Replace(native), Status::kOk);
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(txn_.stats().aborts, 1u);
}

TEST_F(GraftPointTest, ConcurrentInvokeAndReplaceIsSafe) {
  // Hot-swap: one thread invokes in a loop while another replaces/removes.
  // The atomic graft pointer guarantees each invocation sees a coherent
  // graft (or none); nothing crashes and results are always valid.
  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);
  auto g1 = ConstGraft(41);
  auto g2 = ConstGraft(42);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_results{0};
  std::thread invoker([&] {
    while (!stop.load()) {
      const uint64_t r = point.Invoke({});
      if (r != 7 && r != 41 && r != 42) {
        bad_results.fetch_add(1);
      }
    }
  });
  for (int i = 0; i < 300; ++i) {
    (void)point.Replace(g1);
    point.Remove();
    (void)point.Replace(g2);
    point.Remove();
  }
  stop.store(true);
  invoker.join();
  EXPECT_EQ(bad_results.load(), 0u);
}

TEST_F(GraftPointTest, HostCallsCarryInstallerIdentity) {
  // §3.3: graft-callable functions check the installing user's permissions.
  // A host function gating on privilege must see who installed the graft.
  const uint32_t admin_op = host_.Register(
      "k.admin_op",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        if (!ctx.identity.privileged) {
          return Status::kPermissionDenied;
        }
        return 1ull;
      },
      true);
  const uint32_t whoami = host_.Register(
      "k.whoami",
      [](HostCallContext& ctx) -> Result<uint64_t> { return ctx.identity.uid; },
      true);

  FunctionGraftPoint point(
      "obj.fn", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      DefaultConfig(), &txn_, &host_, &ns_);

  // Unprivileged installer: admin_op refuses -> graft aborts -> default.
  Asm a("try-admin");
  a.Call(admin_op).Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(point.Replace(std::make_shared<Graft>("try-admin", *inst, kUser, 4096)),
            Status::kOk);
  EXPECT_EQ(point.Invoke({}), 7u);
  EXPECT_FALSE(point.grafted());
  EXPECT_EQ(txn_.stats().aborts, 1u);

  // Privileged installer: the same code succeeds.
  Result<Program> inst2 = Instrument(*Asm("try-admin2").Call(admin_op).Halt().Finish());
  ASSERT_TRUE(inst2.ok());
  ASSERT_EQ(point.Replace(std::make_shared<Graft>("try-admin2", *inst2, kRoot, 4096)),
            Status::kOk);
  EXPECT_EQ(point.Invoke({}), 1u);

  // whoami sees the installer's uid.
  point.Remove();
  Result<Program> inst3 = Instrument(*Asm("whoami").Call(whoami).Halt().Finish());
  ASSERT_TRUE(inst3.ok());
  ASSERT_EQ(point.Replace(std::make_shared<Graft>("whoami", *inst3, kUser, 4096)),
            Status::kOk);
  EXPECT_EQ(point.Invoke({}), kUser.uid);
}

TEST_F(GraftPointTest, NamespaceLookup) {
  FunctionGraftPoint point(
      "openfile.7.compute-ra", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      DefaultConfig(), &txn_, &host_, &ns_);
  Result<FunctionGraftPoint*> found = ns_.LookupFunction("openfile.7.compute-ra");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), &point);
  EXPECT_FALSE(ns_.LookupFunction("no.such.point").ok());

  const auto entries = ns_.List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "openfile.7.compute-ra");
  EXPECT_FALSE(entries[0].is_event);
}

// --- Event graft points --------------------------------------------------

class EventPointTest : public GraftPointTest {
 protected:
  // A graft that stores its tag into a shared log via host call.
  std::shared_ptr<Graft> TagGraft(const std::string& name, uint64_t tag) {
    Asm a(name);
    a.LoadImm(R0, static_cast<int64_t>(tag)).Call(log_id_).Halt();
    Result<Program> p = a.Finish();
    EXPECT_TRUE(p.ok());
    Result<Program> inst = Instrument(*p);
    EXPECT_TRUE(inst.ok());
    return std::make_shared<Graft>(name, *inst, kUser, 4096);
  }

  void SetUp() override {
    log_id_ = host_.Register(
        "k.log_tag",
        [this](HostCallContext& ctx) -> Result<uint64_t> {
          log_.push_back(ctx.args[0]);
          return 0ull;
        },
        true);
  }

  uint32_t log_id_ = 0;
  std::vector<uint64_t> log_;
};

TEST_F(EventPointTest, HandlersRunInOrder) {
  EventGraftPoint point("net.tcp.80.connection", EventGraftPoint::Config{}, &txn_,
                        &host_, &ns_);
  ASSERT_EQ(point.AddHandler(TagGraft("h2", 2), 20), Status::kOk);
  ASSERT_EQ(point.AddHandler(TagGraft("h1", 1), 10), Status::kOk);
  ASSERT_EQ(point.AddHandler(TagGraft("h3", 3), 30), Status::kOk);
  EXPECT_EQ(point.handler_count(), 3u);

  const auto outcome = point.Dispatch({});
  EXPECT_EQ(outcome.handlers_run, 3u);
  EXPECT_EQ(outcome.handler_aborts, 0u);
  EXPECT_EQ(log_, (std::vector<uint64_t>{1, 2, 3}));  // By order value.
}

TEST_F(EventPointTest, DuplicateHandlerNameRejected) {
  EventGraftPoint point("ev", EventGraftPoint::Config{}, &txn_, &host_, &ns_);
  ASSERT_EQ(point.AddHandler(TagGraft("h", 1), 1), Status::kOk);
  EXPECT_EQ(point.AddHandler(TagGraft("h", 2), 2), Status::kAlreadyExists);
}

TEST_F(EventPointTest, AbortingHandlerRemovedOthersSurvive) {
  EventGraftPoint::Config config;
  config.fuel = 10'000;
  EventGraftPoint point("ev", config, &txn_, &host_, &ns_);

  Asm a("bad-handler");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p);
  ASSERT_TRUE(inst.ok());
  auto bad = std::make_shared<Graft>("bad-handler", *inst, kUser, 4096);

  ASSERT_EQ(point.AddHandler(TagGraft("good", 7), 1), Status::kOk);
  ASSERT_EQ(point.AddHandler(bad, 2), Status::kOk);

  auto outcome = point.Dispatch({});
  EXPECT_EQ(outcome.handlers_run, 2u);
  EXPECT_EQ(outcome.handler_aborts, 1u);
  EXPECT_EQ(point.handler_count(), 1u);  // Bad one removed (covert DoS, §2.5).
  EXPECT_EQ(log_, std::vector<uint64_t>{7});

  // Stream keeps flowing.
  outcome = point.Dispatch({});
  EXPECT_EQ(outcome.handler_aborts, 0u);
  EXPECT_EQ(log_, (std::vector<uint64_t>{7, 7}));
}

TEST_F(EventPointTest, RemoveHandlerByName) {
  EventGraftPoint point("ev", EventGraftPoint::Config{}, &txn_, &host_, &ns_);
  ASSERT_EQ(point.AddHandler(TagGraft("h", 1), 1), Status::kOk);
  EXPECT_EQ(point.RemoveHandler("nope"), Status::kNotFound);
  EXPECT_EQ(point.RemoveHandler("h"), Status::kOk);
  EXPECT_EQ(point.handler_count(), 0u);
}

TEST_F(EventPointTest, AsyncWorkersChargeThreadResource) {
  EventGraftPoint point("ev", EventGraftPoint::Config{}, &txn_, &host_, &ns_);
  auto native = std::make_shared<Graft>(
      "counter",
      [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
        return 0ull;
      },
      kRoot);
  // Account allows exactly one worker thread.
  native->account().SetLimit(ResourceType::kThreads, 1);
  ASSERT_EQ(point.AddHandler(native, 1), Status::kOk);

  point.DispatchAsync({1});
  point.Drain();
  const auto s = point.stats();
  EXPECT_EQ(s.handler_runs, 1u);
  EXPECT_EQ(native->account().usage(ResourceType::kThreads), 0u);

  // Zero-thread account: the handler cannot afford a pool worker, so the
  // event degrades to synchronous delivery on the dispatching thread — it
  // still runs (events are never dropped), recorded as an inline run.
  native->account().SetLimit(ResourceType::kThreads, 0);
  point.DispatchAsync({2});
  point.Drain();
  const auto s2 = point.stats();
  EXPECT_EQ(s2.handler_runs, 2u);
  EXPECT_EQ(s2.async_inline_runs, 1u);
}

TEST_F(EventPointTest, EventNamespaceLookup) {
  EventGraftPoint point("net.udp.2049.packet", EventGraftPoint::Config{}, &txn_,
                        &host_, &ns_);
  ASSERT_TRUE(ns_.LookupEvent("net.udp.2049.packet").ok());
  EXPECT_FALSE(ns_.LookupEvent("net.udp.2049.packet2").ok());
  EXPECT_FALSE(ns_.LookupFunction("net.udp.2049.packet").ok());
}

}  // namespace
}  // namespace vino
