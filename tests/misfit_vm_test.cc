// MiSFIT instrumentation + VM execution tests, including the central
// property of the paper's safety argument: an instrumented program can
// never read or write kernel memory, no matter what addresses it computes —
// while the same program uninstrumented can (the "disaster").

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/sfi/assembler.h"
#include "src/sfi/host.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/misfit.h"
#include "src/sfi/vm.h"

namespace vino {
namespace {

constexpr uint32_t kArenaLog2 = 16;  // 64 KiB arena.

class MisfitVmTest : public ::testing::Test {
 protected:
  MisfitVmTest() : image_(4096, kArenaLog2), vm_(&image_, &host_) {}

  RunOutcome RunRaw(Program p, std::vector<uint64_t> args = {}) {
    return vm_.Run(p, args, RunOptions{});
  }

  RunOutcome RunInstrumented(const Program& p, std::vector<uint64_t> args = {}) {
    Result<Program> inst = Instrument(p, MisfitOptions{kArenaLog2});
    EXPECT_TRUE(inst.ok());
    return vm_.Run(*inst, args, RunOptions{});
  }

  HostCallTable host_;
  MemoryImage image_;
  Vm vm_;
};

TEST_F(MisfitVmTest, ArithmeticProgram) {
  Asm a("arith");
  a.LoadImm(R1, 21).AddI(R2, R1, 21).Mov(R0, R2).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const RunOutcome out = RunRaw(*p);
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.ret, 42u);
}

TEST_F(MisfitVmTest, ArgumentsArriveInRegisters) {
  Asm a("args");
  a.Add(R0, R0, R1).Add(R0, R0, R2).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const RunOutcome out = RunRaw(*p, {10, 20, 30});
  EXPECT_EQ(out.ret, 60u);
}

TEST_F(MisfitVmTest, LoopAndBranches) {
  // Sum 1..100 = 5050.
  Asm a("sum100");
  auto loop = a.NewLabel();
  a.LoadImm(R1, 100).LoadImm(R0, 0).LoadImm(R2, 0);
  a.Bind(loop);
  a.Add(R0, R0, R1).AddI(R1, R1, -1).Bne(R1, R2, loop).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).ret, 5050u);
  // Instrumentation must not change semantics of a memory-free program.
  EXPECT_EQ(RunInstrumented(*p).ret, 5050u);
}

TEST_F(MisfitVmTest, MemoryReadWriteInsideArena) {
  const uint64_t addr = image_.arena_base() + 128;
  Asm a("mem");
  a.LoadImm(R1, static_cast<int64_t>(addr));
  a.LoadImm(R2, 0xdeadbeef);
  a.St64(R1, R2);
  a.Ld64(R0, R1);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).ret, 0xdeadbeefu);
  image_.ZeroArena();
  EXPECT_EQ(RunInstrumented(*p).ret, 0xdeadbeefu);
}

TEST_F(MisfitVmTest, NarrowAccessWidths) {
  const uint64_t addr = image_.arena_base();
  Asm a("widths");
  a.LoadImm(R1, static_cast<int64_t>(addr));
  a.LoadImm(R2, 0x1122334455667788);
  a.St64(R1, R2);
  a.Ld8(R3, R1);        // 0x88
  a.Ld16(R4, R1);       // 0x7788
  a.Ld32(R5, R1);       // 0x55667788
  a.Add(R0, R3, R4);
  a.Add(R0, R0, R5);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).ret, 0x88u + 0x7788u + 0x55667788u);
}

TEST_F(MisfitVmTest, UnsafeProgramCorruptsKernelMemory) {
  // The disaster: an unprotected graft scribbles on kernel data.
  ASSERT_EQ(image_.Write(100, "\x01", 1), Status::kOk);
  Asm a("corruptor");
  a.LoadImm(R1, 100).LoadImm(R2, 0xff).St8(R1, R2).Ld8(R0, R1).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const RunOutcome out = RunRaw(*p);
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.ret, 0xffu);  // Kernel byte overwritten.
}

TEST_F(MisfitVmTest, InstrumentedProgramCannotTouchKernelMemory) {
  // Same program, MiSFIT-protected: the store is redirected into the arena.
  ASSERT_EQ(image_.Write(100, "\x01", 1), Status::kOk);
  Asm a("corruptor");
  a.LoadImm(R1, 100).LoadImm(R2, 0xff).St8(R1, R2).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  const RunOutcome out = RunInstrumented(*p);
  EXPECT_EQ(out.status, Status::kOk);
  uint8_t kernel_byte = 0;
  ASSERT_EQ(image_.Read(100, &kernel_byte, 1), Status::kOk);
  EXPECT_EQ(kernel_byte, 0x01);  // Kernel memory intact.
  // The write landed inside the arena instead (masked address).
  uint8_t arena_byte = 0;
  ASSERT_EQ(image_.Read(image_.arena_base() + 100, &arena_byte, 1), Status::kOk);
  EXPECT_EQ(arena_byte, 0xff);
}

TEST_F(MisfitVmTest, WildAddressTrapsUnsafeButIsMaskedSafe) {
  Asm a("wild");
  a.LoadImm(R1, static_cast<int64_t>(0x7fffffffffff)).Ld64(R0, R1).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).status, Status::kSfiTrap);
  EXPECT_EQ(RunInstrumented(*p).status, Status::kOk);
}

TEST_F(MisfitVmTest, SandboxEscapeFuzz) {
  // Property: for 200 random (address, offset, width) combinations, an
  // instrumented store never modifies any byte outside the arena.
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const auto addr = static_cast<int64_t>(rng.Next());
    const auto off = static_cast<int64_t>(rng.Range(0, 1 << 20)) -
                     static_cast<int64_t>(1 << 19);
    Asm a("fuzz");
    a.LoadImm(R1, addr);
    a.LoadImm(R2, 0x5a5a5a5a5a5a5a5a);
    switch (trial % 4) {
      case 0:
        a.St8(R1, R2, off);
        break;
      case 1:
        a.St16(R1, R2, off);
        break;
      case 2:
        a.St32(R1, R2, off);
        break;
      default:
        a.St64(R1, R2, off);
        break;
    }
    a.Halt();
    Result<Program> p = a.Finish();
    ASSERT_TRUE(p.ok());

    MemoryImage img(4096, kArenaLog2);
    // Poison-free kernel region: all zero. After the run it must still be.
    Vm vm(&img, &host_);
    Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
    ASSERT_TRUE(inst.ok());
    const RunOutcome out = vm.Run(*inst, {}, RunOptions{});
    EXPECT_EQ(out.status, Status::kOk) << "trial " << trial;
    for (uint64_t i = 0; i < img.kernel_size(); ++i) {
      ASSERT_EQ(img.data()[i], 0) << "kernel byte " << i << " dirtied, trial "
                                  << trial;
    }
  }
}

TEST_F(MisfitVmTest, FuelExhaustionStopsInfiniteLoop) {
  Asm a("spin");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  options.fuel = 10'000;
  const RunOutcome out = vm_.Run(*p, {}, options);
  EXPECT_EQ(out.status, Status::kSfiFuelExhausted);
  EXPECT_EQ(out.instructions, 10'000u);
}

TEST_F(MisfitVmTest, ZeroPollIntervalPollsEveryInstruction) {
  // Regression: poll_interval == 0 used to wrap `--until_poll` to
  // UINT32_MAX, silently disabling abort polling for ~4B instructions.
  // It must mean "poll as often as possible" — the abort lands promptly.
  Asm a("spin");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  int polls = 0;
  options.poll_interval = 0;
  options.abort_ctx = &polls;
  options.abort_requested = [](void* ctx) {
    return ++*static_cast<int*>(ctx) >= 3;
  };
  const RunOutcome out = vm_.Run(*p, {}, options);
  EXPECT_EQ(out.status, Status::kTxnAborted);
  EXPECT_EQ(out.instructions, 3u);  // Clamped to every instruction.
}

TEST_F(MisfitVmTest, AbortPollStopsExecution) {
  Asm a("spin");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  int polls = 0;
  options.poll_interval = 64;
  options.abort_ctx = &polls;
  options.abort_requested = [](void* ctx) {
    return ++*static_cast<int*>(ctx) >= 3;
  };
  const RunOutcome out = vm_.Run(*p, {}, options);
  EXPECT_EQ(out.status, Status::kTxnAborted);
  EXPECT_EQ(out.instructions, 3u * 64u);
}

TEST_F(MisfitVmTest, HostCallsExchangeValues) {
  const uint32_t add_id = host_.Register(
      "test.add",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        return ctx.args[0] + ctx.args[1];
      },
      true);
  Asm a("hostcall");
  a.LoadImm(R0, 30).LoadImm(R1, 12).Call(add_id).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).ret, 42u);
  EXPECT_EQ(RunInstrumented(*p).ret, 42u);
}

TEST_F(MisfitVmTest, HostErrorAbortsRun) {
  const uint32_t fail_id = host_.Register(
      "test.fail",
      [](HostCallContext&) -> Result<uint64_t> { return Status::kPermissionDenied; },
      true);
  Asm a("hostfail");
  a.Call(fail_id).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).status, Status::kPermissionDenied);
}

TEST_F(MisfitVmTest, IndirectCallCheckedAgainstCallableList) {
  const uint32_t callable_id = host_.Register(
      "test.ok", [](HostCallContext&) -> Result<uint64_t> { return 7ull; }, true);
  const uint32_t internal_id = host_.Register(
      "test.internal", [](HostCallContext&) -> Result<uint64_t> { return 13ull; },
      false);

  // callr through a register; instrumented becomes ccallr.
  Asm a("indirect");
  a.LoadImm(R1, callable_id).CallR(R1).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunInstrumented(*p).ret, 7u);

  Asm b("indirect-bad");
  b.LoadImm(R1, internal_id).CallR(R1).Halt();
  Result<Program> q = b.Finish();
  ASSERT_TRUE(q.ok());
  // Unsafe: the wild indirect call *succeeds* — the danger.
  EXPECT_EQ(RunRaw(*q).ret, 13u);
  // Safe: the checked call aborts the graft.
  EXPECT_EQ(RunInstrumented(*q).status, Status::kSfiBadCall);
}

TEST_F(MisfitVmTest, InstrumenterRejectsReservedRegisters) {
  Program p;
  p.name = "reserved";
  p.code.push_back(Instruction{Op::kLoadImm, kSandboxMaskReg, 0, 0, 0});
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_EQ(Instrument(p).status(), Status::kSfiBadOpcode);
}

TEST_F(MisfitVmTest, InstrumenterRejectsForgedSandboxOps) {
  Program p;
  p.name = "forged";
  p.code.push_back(Instruction{Op::kSandboxAddr, kSandboxAddrReg, 1, 0, 0});
  p.code.push_back(Instruction{Op::kHalt, 0, 0, 0, 0});
  EXPECT_FALSE(Instrument(p).ok());
}

TEST_F(MisfitVmTest, InstrumenterRejectsDoubleInstrumentation) {
  Asm a("x");
  a.LoadImm(R0, 1).Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> once = Instrument(*p);
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(Instrument(*once).status(), Status::kSfiBadOpcode);
}

TEST_F(MisfitVmTest, BranchTargetsRemappedAcrossInsertions) {
  // A loop whose body contains stores: instrumentation inserts sandbox ops,
  // shifting indices; the loop must still execute exactly 10 iterations.
  Asm a("loopstores");
  auto loop = a.NewLabel();
  const auto base = static_cast<int64_t>(image_.arena_base());
  a.LoadImm(R1, 10);             // counter
  a.LoadImm(R2, base);           // write pointer
  a.LoadImm(R3, 0);              // zero
  a.LoadImm(R0, 0);              // sum
  a.Bind(loop);
  a.St32(R2, R1);                // store counter
  a.Ld32(R4, R2);                // read it back
  a.Add(R0, R0, R4);             // accumulate
  a.AddI(R2, R2, 4);
  a.AddI(R1, R1, -1);
  a.Bne(R1, R3, loop);
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(RunRaw(*p).ret, 55u);
  image_.ZeroArena();
  EXPECT_EQ(RunInstrumented(*p).ret, 55u);
}

TEST_F(MisfitVmTest, InstrumentationOverheadProportionalToMemoryOps) {
  // Without elision, the paper's cost model: one sandbox op per access.
  Asm a("dense");
  const auto base = static_cast<int64_t>(image_.arena_base());
  a.LoadImm(R1, base);
  for (int i = 0; i < 50; ++i) {
    a.St64(R1, R1, i * 8);
  }
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  MisfitOptions options{kArenaLog2};
  options.elide_redundant_masks = false;
  Result<Program> inst = Instrument(*p, options);
  ASSERT_TRUE(inst.ok());
  // One sandbox op per store.
  EXPECT_EQ(inst->code.size(), p->code.size() + 50);
  const RunOutcome raw = RunRaw(*p);
  const RunOutcome safe = vm_.Run(*inst, {}, RunOptions{});
  EXPECT_EQ(safe.instructions, raw.instructions + 50);
}

TEST_F(MisfitVmTest, ElisionCollapsesDenseAccessRuns) {
  // With elision (the default), a dense same-base run needs one sandbox op
  // total: later stores reuse the sandboxed address register with their
  // small constant delta, staying inside the image's guard zone.
  Asm a("dense");
  const auto base = static_cast<int64_t>(image_.arena_base());
  a.LoadImm(R1, base);
  for (int i = 0; i < 50; ++i) {
    a.St64(R1, R1, i * 8);
  }
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->code.size(), p->code.size() + 1);
  const RunOutcome raw = RunRaw(*p);
  const RunOutcome safe = vm_.Run(*inst, {}, RunOptions{});
  EXPECT_EQ(safe.status, Status::kOk);
  EXPECT_EQ(safe.instructions, raw.instructions + 1);
  // The stores landed where the raw program put them.
  for (int i = 0; i < 50; ++i) {
    const uint64_t addr = image_.arena_base() + static_cast<uint64_t>(i) * 8;
    Result<uint64_t> v = image_.ReadU64(addr);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, static_cast<uint64_t>(base)) << "slot " << i;
  }
}

TEST_F(MisfitVmTest, ElisionStopsAtBranchTargetsAndRedefinitions) {
  // A branch target or a base-register redefinition kills the reuse fact;
  // the next access must re-sandbox.
  Asm a("edges");
  const auto base = static_cast<int64_t>(image_.arena_base());
  auto skip = a.NewLabel();
  a.LoadImm(R1, base);
  a.St64(R1, R1);          // sandbox + store
  a.St64(R1, R1, 8);       // elided (delta 8)
  a.AddI(R1, R1, 16);      // base redefined: fact dead
  a.St64(R1, R1);          // sandbox + store
  a.Beq(R2, R3, skip);
  a.Bind(skip);            // branch target: fact dead
  a.St64(R1, R1);          // sandbox + store
  a.Halt();
  Result<Program> p = a.Finish();
  ASSERT_TRUE(p.ok());
  Result<Program> inst = Instrument(*p, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(inst.ok());
  // 4 stores, 3 sandbox ops (only the delta-8 store elides).
  EXPECT_EQ(inst->code.size(), p->code.size() + 3);
  // Offsets beyond the guard zone never elide.
  Asm b("far");
  b.LoadImm(R1, base);
  b.St64(R1, R1);
  b.St64(R1, R1, 1 << 20);  // Way past the guard: re-sandbox.
  b.Halt();
  Result<Program> q = b.Finish();
  ASSERT_TRUE(q.ok());
  Result<Program> qinst = Instrument(*q, MisfitOptions{kArenaLog2});
  ASSERT_TRUE(qinst.ok());
  EXPECT_EQ(qinst->code.size(), q->code.size() + 2);
}

}  // namespace
}  // namespace vino
