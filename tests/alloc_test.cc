// Hot-path memory discipline: the steady-state safe path performs ZERO heap
// allocations. Guards the PR-2 invocation-path work (transaction recycling,
// lean undo log, unified wrapper) against regression by counting every
// global operator new between two markers.
//
// The hook lives in this dedicated test binary so the count is meaningful:
// within a measured window the only running code is the path under test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>

#include "src/base/log.h"
#include "src/base/trace.h"
#include "src/base/trace_spool.h"
#include "src/graft/function_point.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_manager.h"
#include "src/txn/undo_log.h"

namespace {

std::atomic<uint64_t> g_news{0};

}  // namespace

// Replacement global allocation functions: count, then defer to malloc/free.
// (Sized/aligned/nothrow variants funnel here in libstdc++; counting the two
// base news is enough for a regression tripwire.)
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vino {
namespace {

constexpr GraftIdentity kRoot{0, true};

uint64_t AllocCount() { return g_news.load(std::memory_order_relaxed); }

class AllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Instance().SetMinLevel(LogLevel::kError);
    // Touch the thread context (registry insert allocates once per thread).
    (void)KernelContext::Current();
  }
  TxnManager txn_;
  HostCallTable host_;
};

TEST_F(AllocTest, SteadyStateBeginCommitIsAllocationFree) {
  // Warm: first Begin news the Transaction; Commit parks it on the slab.
  for (int i = 0; i < 8; ++i) {
    Transaction* txn = txn_.Begin();
    ASSERT_EQ(txn_.Commit(txn), Status::kOk);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    Transaction* txn = txn_.Begin();
    ASSERT_EQ(txn_.Commit(txn), Status::kOk);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
}

TEST_F(AllocTest, SteadyStateAbortWithInlineUndoIsAllocationFree) {
  uint64_t slot = 0;
  // Warm: the first transaction allocates the object and its undo capacity.
  for (int i = 0; i < 8; ++i) {
    Transaction* txn = txn_.Begin();
    TxnSet(&slot, uint64_t{1});
    txn_.Abort(txn, Status::kTxnAborted);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    Transaction* txn = txn_.Begin();
    TxnSet(&slot, uint64_t{1});  // Inline undo record: flat POD append.
    TxnSet(&slot, uint64_t{2});
    txn_.Abort(txn, Status::kTxnAborted);
    ASSERT_EQ(slot, 0u);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
}

TEST_F(AllocTest, SteadyStateNullNativeGraftSafePathIsAllocationFree) {
  FunctionGraftPoint point(
      "p", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn_, &host_, nullptr);
  ASSERT_EQ(point.Replace(std::make_shared<Graft>(
                "null-native",
                [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
                  return 0ull;
                },
                kRoot)),
            Status::kOk);
  for (int i = 0; i < 8; ++i) {
    (void)point.Invoke({});  // Warm slab + stats shard.
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    (void)point.Invoke({});
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  EXPECT_TRUE(point.grafted()) << "graft must not have been removed";
}

TEST_F(AllocTest, SmallCaptureUndoClosureStaysInline) {
  uint64_t slot = 0;
  // 32 bytes of capture: pointer + three words — the documented budget.
  uint64_t a = 1, b = 2, c = 3;
  UndoClosure small([&slot, a, b, c] { slot = a + b + c; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(slot, 6u);

  // One word over budget: falls back to the heap but still runs.
  uint64_t d = 4;
  UndoClosure big([&slot, a, b, c, d] { slot = a + b + c + d; });
  EXPECT_FALSE(big.is_inline());
  UndoClosure moved(std::move(big));
  moved();
  EXPECT_EQ(slot, 10u);
}

TEST_F(AllocTest, SteadyStateClosureUndoAbortIsAllocationFree) {
  // PushClosure with an inline-eligible capture: once the record and closure
  // vectors are warm, a capture-carrying abort path performs zero
  // allocations (the PR-3 small-buffer optimization).
  uint64_t slot = 0;
  const auto run_once = [&] {
    Transaction* txn = txn_.Begin();
    TxnMutate([&] { slot = 1; }, [&slot] { slot = 0; });
    TxnOnAbort([&slot] { slot += 0; });
    txn_.Abort(txn, Status::kTxnAborted);
  };
  for (int i = 0; i < 8; ++i) {
    run_once();
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    run_once();
    ASSERT_EQ(slot, 0u);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
}

TEST_F(AllocTest, TracingEnabledSafePathIsAllocationFree) {
  // The flight recorder's own hot path: with tracing ON, a warmed safe path
  // (ring allocated on the thread's first post, histogram and cost-model
  // shards are plain atomics) still performs zero allocations.
  trace::SetEnabled(true);
  FunctionGraftPoint point(
      "p", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn_, &host_, nullptr);
  ASSERT_EQ(point.Replace(std::make_shared<Graft>(
                "null-native",
                [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
                  return 0ull;
                },
                kRoot)),
            Status::kOk);
  for (int i = 0; i < 8; ++i) {
    (void)point.Invoke({});  // Warm slab, stats shard, and trace ring.
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    (void)point.Invoke({});
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  trace::SetEnabled(false);
}

TEST_F(AllocTest, TracingEnabledAbortPathIsAllocationFree) {
  // The traced abort path adds clock reads, the abort-cost model, the abort
  // latency histogram, and a kTxnAbort record — none of which may allocate.
  trace::SetEnabled(true);
  uint64_t slot = 0;
  for (int i = 0; i < 8; ++i) {
    Transaction* txn = txn_.Begin();
    TxnSet(&slot, uint64_t{1});
    txn_.Abort(txn, Status::kTxnAborted);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    Transaction* txn = txn_.Begin();
    TxnSet(&slot, uint64_t{1});
    txn_.Abort(txn, Status::kTxnAborted);
    ASSERT_EQ(slot, 0u);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  trace::SetEnabled(false);
}

TEST_F(AllocTest, SteadyStateNullProgramGraftSafePathIsAllocationFree) {
  // The full safe path: transaction, account swap, Vm entry/exit, abort
  // polling, result validation, commit — still zero allocations.
  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t result, std::span<const uint64_t>) {
    return result == 0;
  };
  FunctionGraftPoint point(
      "p", [](std::span<const uint64_t>) -> uint64_t { return 0; }, config,
      &txn_, &host_, nullptr);
  Asm a("null");
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(point.Replace(std::make_shared<Graft>("null", *inst, kRoot, 4096)),
            Status::kOk);
  for (int i = 0; i < 8; ++i) {
    (void)point.Invoke({});
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    (void)point.Invoke({});
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  EXPECT_TRUE(point.grafted()) << "graft must not have been removed";
}

TEST_F(AllocTest, TracingAndSpoolingEnabledSafePathIsAllocationFree) {
  // The full observability stack live: tracing ON and a background
  // SpoolDrainer draining this thread's ring to disk at an aggressive
  // cadence while the safe path runs. The drain cycle is steady-state
  // allocation-free by design (reserved cursor scratch, reserved writer
  // batch, raw fd writes) — this is the gate that keeps it that way.
  trace::SetEnabled(true);
  spool::SpoolDrainer::Options options;
  options.path = ::testing::TempDir() + "vino_alloc_spool.bin";
  options.min_interval_us = 200;  // Drain often: overlap with the window.
  options.max_interval_us = 2'000;
  auto started = spool::SpoolDrainer::Start(options);
  ASSERT_TRUE(started.ok());
  auto drainer = std::move(started.value());

  FunctionGraftPoint point(
      "p", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &txn_, &host_, nullptr);
  ASSERT_EQ(point.Replace(std::make_shared<Graft>(
                "null-native",
                [](std::span<const uint64_t>, MemoryImage*) -> Result<uint64_t> {
                  return 0ull;
                },
                kRoot)),
            Status::kOk);
  for (int i = 0; i < 8; ++i) {
    (void)point.Invoke({});  // Warm slab, stats shard, and trace ring.
  }
  drainer->DrainNow();  // Warm the cursor's per-ring map on this ring.
  drainer->DrainNow();

  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    (void)point.Invoke({});
  }
  drainer->DrainNow();  // At least one full drain inside the window.
  EXPECT_EQ(AllocCount() - before, 0u);

  drainer->Stop();
  EXPECT_EQ(drainer->stats().writer_status, Status::kOk);
  EXPECT_GT(drainer->stats().records, 0u);
  trace::SetEnabled(false);
  std::remove(options.path.c_str());
}

TEST_F(AllocTest, TracingEnabledProgramGraftSafePathIsAllocationFree) {
  // The pinned-Vm program path with the flight recorder live: per-point
  // execution context (no per-invocation RunOptions/Vm construction), the
  // single cached-context account swap, four TSC clock reads, and four ring
  // posts — zero allocations once warm.
  trace::SetEnabled(true);
  FunctionGraftPoint::Config config;
  config.validator = [](uint64_t result, std::span<const uint64_t>) {
    return result == 0;
  };
  FunctionGraftPoint point(
      "p", [](std::span<const uint64_t>) -> uint64_t { return 0; }, config,
      &txn_, &host_, nullptr);
  Asm a("null");
  a.Halt();
  Result<Program> inst = Instrument(*a.Finish());
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(point.Replace(std::make_shared<Graft>("null", *inst, kRoot, 4096)),
            Status::kOk);
  for (int i = 0; i < 8; ++i) {
    (void)point.Invoke({});  // Warm slab, stats shard, and trace ring.
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    (void)point.Invoke({});
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  EXPECT_TRUE(point.grafted()) << "graft must not have been removed";
  trace::SetEnabled(false);
}

}  // namespace
}  // namespace vino
