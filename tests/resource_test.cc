// Resource accounting tests: limits, charging, delegation (lottery-style
// limit transfer), billing chains, and transaction-integrated charges.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/base/context.h"
#include "src/resource/account.h"
#include "src/txn/txn_manager.h"

namespace vino {
namespace {

TEST(ResourceAccountTest, ChargeWithinLimit) {
  ResourceAccount account("a");
  account.SetLimit(ResourceType::kMemory, 100);
  EXPECT_EQ(account.Charge(ResourceType::kMemory, 60), Status::kOk);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 60u);
  EXPECT_EQ(account.available(ResourceType::kMemory), 40u);
}

TEST(ResourceAccountTest, ChargeOverLimitFails) {
  ResourceAccount account("a");
  account.SetLimit(ResourceType::kMemory, 100);
  EXPECT_EQ(account.Charge(ResourceType::kMemory, 101), Status::kLimitExceeded);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 0u);  // Failed charge is free.
}

TEST(ResourceAccountTest, ZeroLimitByDefault) {
  // "When a graft is installed, it initially has limits of zero (i.e., it
  // cannot allocate any resources)." (§3.2)
  ResourceAccount graft_account("graft");
  EXPECT_EQ(graft_account.Charge(ResourceType::kMemory, 1), Status::kLimitExceeded);
}

TEST(ResourceAccountTest, UnchargeSaturates) {
  ResourceAccount account("a");
  account.SetLimit(ResourceType::kMemory, 100);
  ASSERT_EQ(account.Charge(ResourceType::kMemory, 10), Status::kOk);
  account.Uncharge(ResourceType::kMemory, 50);  // Double-release defensive.
  EXPECT_EQ(account.usage(ResourceType::kMemory), 0u);
}

TEST(ResourceAccountTest, ResourceTypesIndependent) {
  ResourceAccount account("a");
  account.SetLimit(ResourceType::kMemory, 100);
  account.SetLimit(ResourceType::kThreads, 2);
  ASSERT_EQ(account.Charge(ResourceType::kThreads, 2), Status::kOk);
  EXPECT_EQ(account.Charge(ResourceType::kThreads, 1), Status::kLimitExceeded);
  EXPECT_EQ(account.Charge(ResourceType::kMemory, 100), Status::kOk);
}

TEST(ResourceAccountTest, TransferLimitDelegation) {
  ResourceAccount installer("installer");
  ResourceAccount graft("graft");
  installer.SetLimit(ResourceType::kMemory, 100);

  EXPECT_EQ(installer.TransferLimit(ResourceType::kMemory, 30, graft), Status::kOk);
  EXPECT_EQ(installer.limit(ResourceType::kMemory), 70u);
  EXPECT_EQ(graft.limit(ResourceType::kMemory), 30u);
  EXPECT_EQ(graft.Charge(ResourceType::kMemory, 30), Status::kOk);
  EXPECT_EQ(graft.Charge(ResourceType::kMemory, 1), Status::kLimitExceeded);
}

TEST(ResourceAccountTest, TransferBeyondUncommittedFails) {
  ResourceAccount a("a");
  ResourceAccount b("b");
  a.SetLimit(ResourceType::kMemory, 100);
  ASSERT_EQ(a.Charge(ResourceType::kMemory, 80), Status::kOk);
  // Only 20 uncommitted; cannot hand out more.
  EXPECT_EQ(a.TransferLimit(ResourceType::kMemory, 30, b), Status::kLimitExceeded);
  EXPECT_EQ(a.TransferLimit(ResourceType::kMemory, 20, b), Status::kOk);
}

TEST(ResourceAccountTest, TransferToSelfRejected) {
  ResourceAccount a("a");
  a.SetLimit(ResourceType::kMemory, 10);
  EXPECT_EQ(a.TransferLimit(ResourceType::kMemory, 5, a), Status::kInvalidArgs);
}

TEST(ResourceAccountTest, PoolingFromMultipleDelegators) {
  // "a collection of database clients and servers may wish to pool their
  // wired memory resources to create a shared buffer pool" (§3.2).
  ResourceAccount c1("client1");
  ResourceAccount c2("client2");
  ResourceAccount pool("shared-pool-graft");
  c1.SetLimit(ResourceType::kWiredMemory, 50);
  c2.SetLimit(ResourceType::kWiredMemory, 50);
  ASSERT_EQ(c1.TransferLimit(ResourceType::kWiredMemory, 40, pool), Status::kOk);
  ASSERT_EQ(c2.TransferLimit(ResourceType::kWiredMemory, 40, pool), Status::kOk);
  EXPECT_EQ(pool.limit(ResourceType::kWiredMemory), 80u);
  EXPECT_EQ(pool.Charge(ResourceType::kWiredMemory, 80), Status::kOk);
}

TEST(ResourceAccountTest, BillingRoutesToSponsor) {
  ResourceAccount installer("installer");
  ResourceAccount graft("graft");
  installer.SetLimit(ResourceType::kMemory, 100);
  ASSERT_EQ(graft.BillTo(&installer), Status::kOk);

  EXPECT_EQ(graft.Charge(ResourceType::kMemory, 40), Status::kOk);
  EXPECT_EQ(installer.usage(ResourceType::kMemory), 40u);
  EXPECT_EQ(graft.usage(ResourceType::kMemory), 0u);  // Charged upstream.

  graft.Uncharge(ResourceType::kMemory, 40);
  EXPECT_EQ(installer.usage(ResourceType::kMemory), 0u);
}

TEST(ResourceAccountTest, BillingChainFollowedToRoot) {
  ResourceAccount root("root");
  ResourceAccount mid("mid");
  ResourceAccount leaf("leaf");
  root.SetLimit(ResourceType::kMemory, 10);
  ASSERT_EQ(mid.BillTo(&root), Status::kOk);
  ASSERT_EQ(leaf.BillTo(&mid), Status::kOk);
  EXPECT_EQ(leaf.Charge(ResourceType::kMemory, 10), Status::kOk);
  EXPECT_EQ(root.usage(ResourceType::kMemory), 10u);
}

TEST(ResourceAccountTest, BillingCycleRejected) {
  ResourceAccount a("a");
  ResourceAccount b("b");
  ASSERT_EQ(a.BillTo(&b), Status::kOk);
  EXPECT_EQ(b.BillTo(&a), Status::kInvalidArgs);
  EXPECT_EQ(a.BillTo(&a), Status::kInvalidArgs);
}

TEST(ResourceAccountTest, ConcurrentChargesNeverExceedLimit) {
  ResourceAccount account("contended");
  account.SetLimit(ResourceType::kMemory, 1000);
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (IsOk(account.Charge(ResourceType::kMemory, 1))) {
          granted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 1000u);
}

class ChargeCurrentTest : public ::testing::Test {
 protected:
  void TearDown() override { KernelContext::Current().account = nullptr; }
  TxnManager manager_;
};

TEST_F(ChargeCurrentTest, NoAccountMeansUnaccounted) {
  KernelContext::Current().account = nullptr;
  EXPECT_EQ(ChargeCurrent(ResourceType::kMemory, 1 << 20), Status::kOk);
}

TEST_F(ChargeCurrentTest, ChargesBoundAccount) {
  ResourceAccount account("bound");
  account.SetLimit(ResourceType::kMemory, 10);
  ScopedAccount scope(&account);
  EXPECT_EQ(ChargeCurrent(ResourceType::kMemory, 8), Status::kOk);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 8u);
  EXPECT_EQ(ChargeCurrent(ResourceType::kMemory, 8), Status::kLimitExceeded);
  UnchargeCurrent(ResourceType::kMemory, 8);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 0u);
}

TEST_F(ChargeCurrentTest, AbortReturnsCharges) {
  // "If we terminate the thread, we undo any kernel state changes ...
  // releasing any resources held by the thread" (§2.2).
  ResourceAccount account("graft");
  account.SetLimit(ResourceType::kMemory, 100);
  ScopedAccount scope(&account);

  Transaction* txn = manager_.Begin();
  EXPECT_EQ(ChargeCurrent(ResourceType::kMemory, 64), Status::kOk);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 64u);
  manager_.Abort(txn, Status::kTxnAborted);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 0u);
}

TEST_F(ChargeCurrentTest, CommitKeepsCharges) {
  ResourceAccount account("graft");
  account.SetLimit(ResourceType::kMemory, 100);
  ScopedAccount scope(&account);

  Transaction* txn = manager_.Begin();
  EXPECT_EQ(ChargeCurrent(ResourceType::kMemory, 64), Status::kOk);
  EXPECT_EQ(manager_.Commit(txn), Status::kOk);
  EXPECT_EQ(account.usage(ResourceType::kMemory), 64u);
}

TEST_F(ChargeCurrentTest, ScopedAccountSwapsAndRestores) {
  ResourceAccount outer("outer");
  ResourceAccount inner("inner");
  KernelContext::Current().account = &outer;
  {
    ScopedAccount swap(&inner);
    EXPECT_EQ(KernelContext::Current().account, &inner);
  }
  EXPECT_EQ(KernelContext::Current().account, &outer);
}

}  // namespace
}  // namespace vino
