// SHA-256 / HMAC-SHA256 against FIPS 180-4 and RFC 4231 test vectors.

#include <gtest/gtest.h>

#include <string>

#include "src/base/sha256.h"

namespace vino {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.Update(chunk);
  }
  EXPECT_EQ(DigestHex(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (const char c : msg) {
    ctx.Update(&c, 1);
  }
  EXPECT_EQ(ctx.Finish(), Sha256::Hash(msg));
}

TEST(Sha256Test, ExactBlockBoundary) {
  const std::string msg(64, 'x');
  const std::string msg2(128, 'x');
  EXPECT_NE(DigestHex(Sha256::Hash(msg)), DigestHex(Sha256::Hash(msg2)));
  // 64-byte message (one full block) computes without error and reproduces.
  EXPECT_EQ(Sha256::Hash(msg), Sha256::Hash(msg));
}

TEST(Sha256Test, ResetReuses) {
  Sha256 ctx;
  ctx.Update("garbage");
  ctx.Reset();
  ctx.Update("abc");
  EXPECT_EQ(DigestHex(ctx.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(HmacSha256Test, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  const std::string data = "Hi There";
  EXPECT_EQ(DigestHex(HmacSha256(key, data.data(), data.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256Test, Rfc4231Case2) {
  const std::string data = "what do ya want for nothing?";
  EXPECT_EQ(DigestHex(HmacSha256("Jefe", data.data(), data.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
TEST(HmacSha256Test, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string data(50, '\xdd');
  EXPECT_EQ(DigestHex(HmacSha256(key, data.data(), data.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size gets hashed.
TEST(HmacSha256Test, LongKeyIsHashed) {
  const std::string key(131, '\xaa');
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(DigestHex(HmacSha256(key, data.data(), data.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, DifferentKeysDiffer) {
  const std::string data = "payload";
  EXPECT_NE(HmacSha256("key1", data.data(), data.size()),
            HmacSha256("key2", data.data(), data.size()));
}

}  // namespace
}  // namespace vino
