// Systematic per-opcode coverage: every assemblable opcode is executed by
// the VM, disassembled, re-assembled, and encode/decode round-tripped.

#include <gtest/gtest.h>

#include "src/sfi/assembler.h"
#include "src/sfi/disasm.h"
#include "src/sfi/memory_image.h"
#include "src/sfi/vm.h"

namespace vino {
namespace {

// One operand-shape exemplar per opcode (branches point at the final halt).
Instruction Exemplar(Op op, int64_t branch_target) {
  switch (op) {
    case Op::kNop:
    case Op::kHalt:
      return {op, 0, 0, 0, 0};
    case Op::kLoadImm:
      return {op, 1, 0, 0, -42};
    case Op::kMov:
      return {op, 1, 2, 0, 0};
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivU:
    case Op::kRemU:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSar:
      return {op, 1, 2, 3, 0};
    case Op::kAddI:
    case Op::kMulI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kShlI:
    case Op::kShrI:
      return {op, 1, 2, 0, 5};
    case Op::kLd8:
    case Op::kLd16:
    case Op::kLd32:
    case Op::kLd64:
      return {op, 1, 2, 0, 8};
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
      return {op, 0, 2, 3, 8};
    case Op::kJmp:
      return {op, 0, 0, 0, branch_target};
    case Op::kBeq:
    case Op::kBne:
    case Op::kBltU:
    case Op::kBgeU:
    case Op::kBltS:
    case Op::kBgeS:
      return {op, 0, 1, 2, branch_target};
    case Op::kCall:
      return {op, 0, 0, 0, 1};
    case Op::kCallR:
      return {op, 0, 3, 0, 0};  // r3 holds the callable id (1).
    default:
      return {Op::kNop, 0, 0, 0, 0};
  }
}

bool Assemblable(Op op) {
  return op != Op::kSandboxAddr && op != Op::kCheckedCallR && op != Op::kOpCount;
}

class OpRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(OpRoundTripTest, DisassembleReassembleEncodeDecode) {
  const Op op = static_cast<Op>(GetParam());
  if (!Assemblable(op)) {
    GTEST_SKIP() << "instrumentation-only opcode";
  }

  HostCallTable host;
  host.Register("k.one", [](HostCallContext&) -> Result<uint64_t> { return 1ull; },
                true);

  // Program: setup registers with arena addresses, the exemplar, halt.
  MemoryImage image(4096, 16);
  Program p;
  p.name = "op-" + std::string(OpName(op));
  p.code.push_back(
      {Op::kLoadImm, 1, 0, 0, static_cast<int64_t>(image.arena_base())});
  p.code.push_back(
      {Op::kLoadImm, 2, 0, 0, static_cast<int64_t>(image.arena_base() + 64)});
  p.code.push_back({Op::kLoadImm, 3, 0, 0, 1});  // Also the callable id.
  const auto halt_index = static_cast<int64_t>(p.code.size() + 1);
  p.code.push_back(Exemplar(op, halt_index));
  p.code.push_back({Op::kHalt, 0, 0, 0, 0});
  ASSERT_EQ(VerifyProgram(p), Status::kOk);

  // Executes cleanly (r1/r2 hold in-arena addresses; call id 1 registered).
  Vm vm(&image, &host);
  EXPECT_EQ(vm.Run(p, {}, RunOptions{}).status, Status::kOk) << OpName(op);

  // Disassemble -> reassemble -> identical code.
  DisasmOptions options;
  options.host = &host;
  const std::string text = Disassemble(p, options);
  Result<Program> reassembled = Assemble(text, p.name, &host);
  ASSERT_TRUE(reassembled.ok()) << OpName(op) << "\n" << text;
  EXPECT_EQ(reassembled->code, p.code) << OpName(op) << "\n" << text;

  // Encode -> decode -> identical.
  Result<Program> decoded = DecodeProgram(EncodeProgram(p));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, p.code);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpRoundTripTest,
                         ::testing::Range(0, static_cast<int>(Op::kOpCount)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           std::string name(OpName(static_cast<Op>(param_info.param)));
                           for (char& c : name) {
                             if (c == '?' ) {
                               c = 'X';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace vino
