// Full-stack integration tests: assemble (text) -> instrument -> sign ->
// load -> install -> invoke across multiple subsystems at once, plus
// end-to-end recovery scenarios that span the transaction system, resource
// accounts, and the kernel substrates.

#include <gtest/gtest.h>

#include <string>

#include "src/fs/file_system.h"
#include "src/graft/loader.h"
#include "src/mem/memory_system.h"
#include "src/net/net_stack.h"
#include "src/sched/scheduler.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"

namespace vino {
namespace {

constexpr GraftIdentity kUser{1001, false};

// A complete kernel instance for integration scenarios.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : authority_("itest-key"),
        loader_(&ns_, &host_, SigningAuthority("itest-key")),
        clock_(),
        disk_(DiskParams{}, &clock_),
        cache_(128, 16, &disk_, &clock_),
        fs_(&disk_, &cache_, &txn_, &host_, &ns_),
        mem_(32, &txn_, &host_, &ns_),
        net_(&txn_, &host_, &ns_),
        sched_(Scheduler::Params{}, &clock_, &txn_, &host_, &ns_) {}

  // Full pipeline from text assembly to a loaded graft.
  Result<std::shared_ptr<Graft>> LoadFromSource(const std::string& source,
                                                const std::string& name) {
    Result<Program> program = Assemble(source, name, &host_);
    if (!program.ok()) {
      return program.status();
    }
    Result<Program> inst = Instrument(*program);
    if (!inst.ok()) {
      return inst.status();
    }
    Result<SignedGraft> sg = authority_.Sign(*inst);
    if (!sg.ok()) {
      return sg.status();
    }
    return loader_.Load(*sg, {kUser, nullptr});
  }

  TxnManager txn_;
  HostCallTable host_;
  GraftNamespace ns_;
  SigningAuthority authority_;
  GraftLoader loader_;
  ManualClock clock_;
  SimDisk disk_;
  BufferCache cache_;
  FlatFileSystem fs_;
  MemorySystem mem_;
  NetStack net_;
  Scheduler sched_;
};

TEST_F(IntegrationTest, TextAssemblyToInstalledGraftViaNamespace) {
  // The Figure 1 flow, end to end, against a real open file.
  Result<FileId> file = fs_.CreateFile("data", 64 * 4096);
  ASSERT_TRUE(file.ok());
  Result<OpenFile*> open = fs_.Open(*file);
  ASSERT_TRUE(open.ok());

  // Graft: always ask for block 7 (offset 7*4096, one block).
  const std::string source = R"(
    ; compute-ra: write one extent to the output area, return 1
    loadi r6, 28672    ; 7 * 4096
    st64 r4, r6        ; out[0].offset
    loadi r6, 4096
    st64 r4, r6, 8     ; out[0].length
    loadi r0, 1
    halt
  )";
  Result<std::shared_ptr<Graft>> graft = LoadFromSource(source, "block7-ra");
  ASSERT_TRUE(graft.ok());

  const std::string point_name = (*open)->readahead_point().name();
  ASSERT_TRUE(ns_.LookupFunction(point_name).ok());
  ASSERT_EQ(loader_.InstallFunction(point_name, *graft), Status::kOk);

  // Any read now prefetches block 7.
  ASSERT_TRUE((*open)->Read(0, 4096).ok());
  EXPECT_EQ((*open)->stats().prefetches_enqueued, 1u);
  clock_.Advance(100'000);
  Result<OpenFile::ReadResult> hinted = (*open)->Read(7 * 4096, 4096);
  ASSERT_TRUE(hinted.ok());
  EXPECT_TRUE(hinted->cache_hit);
}

TEST_F(IntegrationTest, NestedGraftsNestedTransactions) {
  // Graft A's host call internally invokes graft point B (a graft calling a
  // graft): B runs in a nested transaction; B's abort must not kill A.
  static uint64_t state_a = 0;
  static uint64_t state_b = 0;
  state_a = state_b = 0;

  FunctionGraftPoint point_b(
      "inner.point", [](std::span<const uint64_t>) -> uint64_t { return 99; },
      FunctionGraftPoint::Config{}, &txn_, &host_, &ns_);

  const uint32_t call_inner = host_.Register(
      "k.call_inner",
      [&point_b](HostCallContext&) -> Result<uint64_t> {
        return point_b.Invoke({});
      },
      true);
  const uint32_t set_a = host_.Register(
      "k.set_a",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        TxnSet(&state_a, ctx.args[0]);
        return 0ull;
      },
      true);
  const uint32_t set_b = host_.Register(
      "k.set_b",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        TxnSet(&state_b, ctx.args[0]);
        return 0ull;
      },
      true);

  // Inner graft: mutate state_b, then trap (illegal indirect call).
  Asm inner("inner");
  inner.LoadImm(R0, 55).Call(set_b);
  inner.LoadImm(R1, 0xffff).CallR(R1);  // Aborts.
  inner.Halt();
  Result<SignedGraft> inner_signed = authority_.Sign(*Instrument(*inner.Finish()));
  ASSERT_TRUE(inner_signed.ok());
  Result<std::shared_ptr<Graft>> inner_graft =
      loader_.Load(*inner_signed, {kUser, nullptr});
  ASSERT_TRUE(inner_graft.ok());
  ASSERT_EQ(point_b.Replace(*inner_graft), Status::kOk);

  // Outer graft: mutate state_a, call inner point, return inner's answer.
  Asm outer("outer");
  outer.LoadImm(R0, 11).Call(set_a);
  outer.Call(call_inner);
  outer.Halt();
  Result<SignedGraft> outer_signed = authority_.Sign(*Instrument(*outer.Finish()));
  ASSERT_TRUE(outer_signed.ok());
  Result<std::shared_ptr<Graft>> outer_graft =
      loader_.Load(*outer_signed, {kUser, nullptr});
  ASSERT_TRUE(outer_graft.ok());

  FunctionGraftPoint point_a(
      "outer.point", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      FunctionGraftPoint::Config{}, &txn_, &host_, &ns_);
  ASSERT_EQ(point_a.Replace(*outer_graft), Status::kOk);

  const uint64_t result = point_a.Invoke({});
  // Inner aborted -> inner point fell back to its default (99); outer
  // committed, keeping its own mutation.
  EXPECT_EQ(result, 99u);
  EXPECT_EQ(state_a, 11u);  // Outer's write survived.
  EXPECT_EQ(state_b, 0u);   // Inner's write rolled back.
  EXPECT_FALSE(point_b.grafted());  // Inner graft removed.
  EXPECT_TRUE(point_a.grafted());   // Outer graft unharmed.
  EXPECT_EQ(txn_.stats().nested_begins, 1u);
}

TEST_F(IntegrationTest, ResourceDelegationAcrossLoaderAndPoints) {
  // Installer funds the graft by limit transfer; the graft spends through a
  // host allocation call; an abort refunds everything.
  ResourceAccount installer("installer");
  installer.SetLimit(ResourceType::kMemory, 1000);

  const uint32_t alloc = host_.Register(
      "k.alloc",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        const Status s = ChargeCurrent(ResourceType::kMemory, ctx.args[0]);
        if (!IsOk(s)) {
          return s;
        }
        return 0ull;
      },
      true);

  Asm a("spender");
  a.LoadImm(R0, 400).Call(alloc);
  a.LoadImm(R0, 1).Halt();
  Result<SignedGraft> sg = authority_.Sign(*Instrument(*a.Finish()));
  ASSERT_TRUE(sg.ok());
  Result<std::shared_ptr<Graft>> graft = loader_.Load(*sg, {kUser, nullptr});
  ASSERT_TRUE(graft.ok());
  ASSERT_EQ(installer.TransferLimit(ResourceType::kMemory, 500, (*graft)->account()),
            Status::kOk);

  FunctionGraftPoint point(
      "spend.point", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      FunctionGraftPoint::Config{}, &txn_, &host_, &ns_);
  ASSERT_EQ(point.Replace(*graft), Status::kOk);

  EXPECT_EQ(point.Invoke({}), 1u);
  EXPECT_EQ((*graft)->account().usage(ResourceType::kMemory), 400u);

  // A second invocation exceeds the remaining 100 -> abort refunds the
  // failed attempt (nothing extra charged) and the committed 400 stays.
  EXPECT_EQ(point.Invoke({}), 0u);  // Fell back to default.
  EXPECT_EQ((*graft)->account().usage(ResourceType::kMemory), 400u);
  EXPECT_FALSE(point.grafted());
}

TEST_F(IntegrationTest, EvictionGraftUnderMemoryPressureFromFileCache) {
  // Two subsystems interacting: an address space under pressure while an
  // eviction graft protects its hot pages; forward progress throughout.
  VirtualAddressSpace* vas = mem_.CreateVas("app", 8);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok());
  }
  // Protect pages 0 and 1.
  Page* hot0 = vas->FindResident(0);
  Page* hot1 = vas->FindResident(1);
  vas->SetPinnedHints({hot0->id, hot1->id});

  const std::string source = R"(
    ; eviction: return first resident not in hints
    ; r0=victim r1=res addr r2=res count r3=hint addr r4=hint count
    loadi r5, 0
  outer:
    bgeu r5, r2, giveup
    shli r7, r5, 3
    add r7, r1, r7
    ld64 r6, r7
    loadi r8, 0
  inner:
    bgeu r8, r4, take
    shli r9, r8, 3
    add r9, r3, r9
    ld64 r10, r9
    beq r10, r6, skip
    addi r8, r8, 1
    jmp inner
  take:
    mov r0, r6
    halt
  skip:
    addi r5, r5, 1
    jmp outer
  giveup:
    halt
  )";
  Result<std::shared_ptr<Graft>> graft = LoadFromSource(source, "pin-evict");
  ASSERT_TRUE(graft.ok());
  ASSERT_EQ(vas->eviction_point().Replace(*graft), Status::kOk);
  vas->SetPinnedHints({hot0->id, hot1->id});  // Re-mirror into new arena.

  // Pressure: fault 20 more pages through the 8-frame limit.
  for (uint64_t i = 8; i < 28; ++i) {
    ASSERT_TRUE(mem_.Touch(vas->id(), i).ok()) << i;
    // Keep the hot pages' ids fresh in the hint mirror (ids are stable).
  }
  // The hot pages never left memory.
  EXPECT_EQ(vas->FindResident(0), hot0);
  EXPECT_EQ(vas->FindResident(1), hot1);
  EXPECT_GT(mem_.stats().graft_overrules, 0u);
  EXPECT_LE(vas->resident_count(), 8u);
}

TEST_F(IntegrationTest, HttpGraftServesWhileReadaheadGraftPrefetches) {
  // Two grafted subsystems at once: an HTTP handler event graft and a file
  // read-ahead graft, interleaved, both transactional.
  EventGraftPoint* port = net_.ListenTcp(80);
  const std::string http_src = R"(
    ; echo handler: recv into arena, send back, close
    mov r6, r0
    loadi r7, 65536
    mov r1, r7
    loadi r2, 256
    call net.recv
    mov r8, r0
    mov r0, r6
    mov r1, r7
    mov r2, r8
    call net.send
    mov r0, r6
    call net.close
    loadi r0, 1
    halt
  )";
  Result<std::shared_ptr<Graft>> http = LoadFromSource(http_src, "echo");
  ASSERT_TRUE(http.ok());
  (*http)->account().SetLimit(ResourceType::kNetBandwidth, 4096);
  ASSERT_EQ(port->AddHandler(*http, 1), Status::kOk);

  Result<FileId> file = fs_.CreateFile("content", 64 * 4096);
  ASSERT_TRUE(file.ok());
  Result<OpenFile*> open = fs_.Open(*file);
  ASSERT_TRUE(open.ok());

  for (int i = 0; i < 5; ++i) {
    Result<ConnectionId> conn = net_.DeliverConnection(80, "GET /" + std::to_string(i));
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(net_.FindConnection(*conn)->tx, "GET /" + std::to_string(i));
    ASSERT_TRUE((*open)->Read(static_cast<uint64_t>(i) * 4096, 4096).ok());
  }
  EXPECT_EQ(txn_.stats().aborts, 0u);
  EXPECT_GE(txn_.stats().commits, 5u);
}

TEST_F(IntegrationTest, LoaderNamespaceEndToEndErrors) {
  // Every failure mode of the Figure 1 flow, through the real pipeline.
  Result<std::shared_ptr<Graft>> graft = LoadFromSource("loadi r0, 1\nhalt\n", "ok");
  ASSERT_TRUE(graft.ok());
  // Unknown point.
  EXPECT_EQ(loader_.InstallFunction("does.not.exist", *graft), Status::kNotFound);
  // Syntax error in source.
  EXPECT_FALSE(LoadFromSource("bogus r1\n", "bad").ok());
  // Unknown host function name.
  EXPECT_FALSE(LoadFromSource("call not.a.function\nhalt\n", "bad2").ok());
}

}  // namespace
}  // namespace vino
