// Cooperative scheduling with schedule-delegate grafts (paper §4.3).
//
// A database server and three clients form one scheduling group. When a
// client has a request outstanding, its delegate graft donates its
// timeslice to the server, so the server's share of the CPU grows with
// demand — without affecting the unrelated "bystander" application in
// another group (Cao's principle / Rule 8).

#include <cstdio>

#include "src/base/log.h"
#include "src/graft/loader.h"
#include "src/graft/namespace.h"
#include "src/sched/scheduler.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

using namespace vino;

namespace {

constexpr GraftIdentity kDba{42, false};
constexpr uint64_t kDbGroup = 1;
constexpr uint64_t kOtherGroup = 2;

// Delegate graft: if the "request outstanding" flag in the shared arena is
// nonzero, return the server's thread id; else run ourselves.
// Args: r0 = own id. The application mailbox lives at arena offset 1024
// (offsets below that belong to the kernel's process-list marshalling):
// arena[1024] = flag, arena[1032] = server id.
Program DonatingDelegate() {
  Asm a("donate-to-server");
  auto self = a.NewLabel();
  a.LoadImm(R1, 1024);   // Arena-relative; masking maps it to the arena.
  a.Ld64(R2, R1);        // flag
  a.LoadImm(R3, 0);
  a.Beq(R2, R3, self);
  a.Ld64(R0, R1, 8);     // server id
  a.Halt();
  a.Bind(self);
  a.Halt();              // r0 still holds own id.
  return *a.Finish();
}

void PrintShares(const char* phase, Scheduler& sched, ThreadId server,
                 const std::vector<ThreadId>& clients, ThreadId bystander) {
  const double total = 200.0;  // Decisions per phase.
  std::printf("%-28s server %5.1f%%  clients", phase,
              100.0 * static_cast<double>(sched.Find(server)->dispatches()) / total);
  for (ThreadId c : clients) {
    std::printf(" %4.1f%%",
                100.0 * static_cast<double>(sched.Find(c)->dispatches()) / total);
  }
  std::printf("  bystander %5.1f%%\n",
              100.0 * static_cast<double>(sched.Find(bystander)->dispatches()) / total);
}

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== timeslice donation via schedule-delegate grafts (paper §4.3) ==\n\n");

  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  ManualClock clock;
  Scheduler sched(Scheduler::Params{}, &clock, &txn, &host, &ns);
  SigningAuthority authority("sched-key");
  GraftLoader loader(&ns, &host, SigningAuthority("sched-key"));

  KernelThread* server = sched.CreateThread("db-server", kDbGroup);
  std::vector<ThreadId> clients;
  std::vector<std::shared_ptr<Graft>> grafts;
  for (int i = 0; i < 3; ++i) {
    KernelThread* c = sched.CreateThread("client-" + std::to_string(i), kDbGroup);
    clients.push_back(c->id());
    Result<SignedGraft> sg = authority.Sign(*Instrument(DonatingDelegate()));
    Result<std::shared_ptr<Graft>> graft = loader.Load(*sg, {kDba, nullptr});
    // Tell the graft who the server is; no request outstanding yet.
    MemoryImage& arena = (*graft)->image();
    (void)arena.WriteU64(arena.arena_base() + 1024, 0);
    (void)arena.WriteU64(arena.arena_base() + 1032, server->id());
    (void)loader.InstallFunction(c->delegate_point().name(), *graft);
    grafts.push_back(*graft);
  }
  KernelThread* bystander = sched.CreateThread("bystander", kOtherGroup);

  // Phase 1: idle database — no requests outstanding, fair round-robin.
  sched.Run(200);
  PrintShares("idle (no requests):", sched, server->id(), clients,
              bystander->id());

  // Phase 2: all clients blocked on the server — donate their slices.
  const auto before_server = server->dispatches();
  std::vector<uint64_t> before_clients;
  for (ThreadId c : clients) {
    before_clients.push_back(sched.Find(c)->dispatches());
  }
  const auto before_bystander = bystander->dispatches();
  for (auto& graft : grafts) {
    MemoryImage& arena = graft->image();
    (void)arena.WriteU64(arena.arena_base() + 1024, 1);  // Request outstanding!
  }
  sched.Run(200);

  const double total = 200.0;
  std::printf("%-28s server %5.1f%%  clients", "requests outstanding:",
              100.0 * static_cast<double>(server->dispatches() - before_server) / total);
  for (size_t i = 0; i < clients.size(); ++i) {
    std::printf(" %4.1f%%",
                100.0 *
                    static_cast<double>(sched.Find(clients[i])->dispatches() -
                                        before_clients[i]) /
                    total);
  }
  std::printf("  bystander %5.1f%%\n",
              100.0 * static_cast<double>(bystander->dispatches() - before_bystander) /
                  total);

  std::printf(
      "\nWith requests outstanding, the clients' slices flow to the server\n"
      "(~80%% of the CPU) while the bystander in another group keeps its\n"
      "fair 20%% share — the delegation cannot touch non-consenting apps.\n");
  std::printf("[sched] delegations=%llu invalid=%llu\n",
              static_cast<unsigned long long>(sched.stats().delegations),
              static_cast<unsigned long long>(sched.stats().invalid_delegations));
  return 0;
}
