// The five classes of graft misbehavior from §2 of the paper, each
// demonstrated against a live kernel — and survived. Prints which Table 1
// rule contains each attack.
//
//   §2.1 illegal data access        -> SFI masking / link-time call checks
//   §2.2 resource hoarding          -> fuel, lock time-outs, resource limits
//   §2.3 incorrect interfaces       -> restricted points, callable list
//   §2.4 antisocial behavior        -> validators confine damage to opt-ins
//   §2.5 covert denial of service   -> abort + forcible removal

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/base/log.h"
#include "src/graft/loader.h"
#include "src/mem/memory_system.h"
#include "src/sfi/assembler.h"
#include "src/sfi/isa.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"
#include "src/txn/txn_lock.h"

using namespace vino;

namespace {

constexpr GraftIdentity kMallory{666, /*privileged=*/false};

struct Zoo {
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  SigningAuthority authority{"zoo-key"};
  GraftLoader loader{&ns, &host, SigningAuthority("zoo-key")};

  std::shared_ptr<Graft> Load(Program p) {
    Result<Program> inst = Instrument(std::move(p));
    Result<SignedGraft> sg = authority.Sign(*inst);
    Result<std::shared_ptr<Graft>> g = loader.Load(*sg, {kMallory, nullptr});
    return g.ok() ? *g : nullptr;
  }

  // A forged-toolchain graft: hand-written "instrumented" code with an
  // attacker-chosen manifest, properly signed (the compromised pipeline
  // holds the key). Only the load-time verifier stands in its way.
  Status LoadForged(std::vector<Instruction> code,
                    std::vector<uint32_t> declared = {}) {
    Program p;
    p.name = "forged";
    p.instrumented = true;
    p.sandbox_log2 = 16;
    p.code = std::move(code);
    p.direct_call_ids = std::move(declared);
    Result<SignedGraft> sg = authority.Sign(p);
    return loader.Load(*sg, {kMallory, nullptr}).status();
  }
};

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "SURVIVED" : " FAILED ", what);
}

// --- §2.1 Illegal data access -------------------------------------------
void IllegalDataAccess(Zoo& zoo) {
  std::printf("\n§2.1 Illegal data access (Rules 3, 4, 6, 7)\n");

  // A graft that tries to read kernel memory at address 64.
  Asm a("kernel-reader");
  a.LoadImm(R1, 64).Ld64(R0, R1).Halt();
  auto graft = zoo.Load(*a.Finish());

  FunctionGraftPoint point(
      "zoo.point", [](std::span<const uint64_t>) -> uint64_t { return 42; },
      FunctionGraftPoint::Config{}, &zoo.txn, &zoo.host, &zoo.ns);
  (void)point.Replace(graft);

  // Plant a secret in kernel memory; the sandboxed read cannot see it.
  const uint64_t secret = 0xfeedfacecafebeef;
  (void)graft->image().WriteU64(64, secret);
  const uint64_t leaked = point.Invoke({});
  Check(leaked != secret, "sandboxed load cannot read kernel memory");

  // A graft calling a data-returning internal function is refused at link
  // time (Rule 4): demo with a non-callable host function.
  const uint32_t internal = zoo.host.Register(
      "zoo.read_user_data",
      [](HostCallContext&) -> Result<uint64_t> { return 1ull; }, false);
  Asm b("deputy");
  b.Call(internal).Halt();
  Check(zoo.Load(*b.Finish()) == nullptr,
        "direct call to non-graft-callable function refused at link time");

  // Unsigned / tampered code is never executed (Rule 6).
  Asm c("tampered");
  c.LoadImm(R0, 1).Halt();
  Result<SignedGraft> sg = zoo.authority.Sign(*Instrument(*c.Finish()));
  SignedGraft bad = *sg;
  bad.program.code[0].imm = 2;
  Check(!zoo.loader.Load(bad, {kMallory, nullptr}).ok(),
        "bit-flipped graft fails signature verification");
}

// --- §2.2 Resource hoarding ----------------------------------------------
void ResourceHoarding(Zoo& zoo) {
  std::printf("\n§2.2 Resource hoarding (Rules 1, 2, 9)\n");

  // (a) The paper's own fragment: lock(resourceA); while (1);
  TxnLock resource_a("resourceA", {2'000 /*us timeout*/, 200});
  const uint32_t lock_a = zoo.host.Register(
      "zoo.lockA",
      [&resource_a](HostCallContext&) -> Result<uint64_t> {
        const Status s = resource_a.Acquire();
        return IsOk(s) ? Result<uint64_t>(0ull) : Result<uint64_t>(s);
      },
      true);

  Asm a("lock-hog");
  a.Call(lock_a);
  auto forever = a.NewLabel();
  a.Bind(forever);
  a.Jmp(forever);
  auto hog = zoo.Load(*a.Finish());

  FunctionGraftPoint::Config config;
  config.fuel = 1ull << 40;  // Effectively unbounded: the time-out must act.
  config.poll_interval = 64;
  FunctionGraftPoint point(
      "zoo.hoard", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      config, &zoo.txn, &zoo.host, &zoo.ns);
  (void)point.Replace(hog);

  // The graft runs on a worker; a kernel thread contends for resourceA.
  std::atomic<uint64_t> result{0};
  std::thread worker([&] { result = point.Invoke({}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Status got = resource_a.Acquire();  // Times out the hog's txn.
  worker.join();
  Check(IsOk(got), "contended lock recovered via holder abort (time-out)");
  Check(result.load() == 7, "kernel answered with the default function");
  Check(!point.grafted(), "hoarding graft forcibly removed");
  resource_a.Release();

  // (b) Memory hoarding: a graft with zero limits cannot allocate.
  auto piggy = zoo.Load([&zoo] {
    Asm b("piggy");
    const uint32_t alloc = zoo.host.Register(
        "zoo.alloc",
        [](HostCallContext& ctx) -> Result<uint64_t> {
          const Status s = ChargeCurrent(ResourceType::kMemory, ctx.args[0]);
          return IsOk(s) ? Result<uint64_t>(0ull) : Result<uint64_t>(s);
        },
        true);
    b.LoadImm(R0, 1 << 20).Call(alloc).Halt();
    return *b.Finish();
  }());
  FunctionGraftPoint point2(
      "zoo.alloc-point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &zoo.txn, &zoo.host, &zoo.ns);
  (void)point2.Replace(piggy);
  Check(point2.Invoke({}) == 7 && !point2.grafted(),
        "zero-limit graft's 1MB allocation refused; graft aborted");

  // (c) A pure infinite loop is bounded by fuel (preemptibility, Rule 1).
  Asm c("spinner");
  auto top = c.NewLabel();
  c.Bind(top);
  c.Jmp(top);
  auto spinner = zoo.Load(*c.Finish());
  FunctionGraftPoint::Config tight;
  tight.fuel = 100'000;
  FunctionGraftPoint point3(
      "zoo.spin-point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      tight, &zoo.txn, &zoo.host, &zoo.ns);
  (void)point3.Replace(spinner);
  Check(point3.Invoke({}) == 7, "infinite loop preempted at fuel limit");
}

// --- §2.3 Incorrect interfaces --------------------------------------------
void IncorrectInterfaces(Zoo& zoo) {
  std::printf("\n§2.3 Attempting to use incorrect interfaces (Rule 5)\n");

  FunctionGraftPoint::Config restricted;
  restricted.restricted = true;
  FunctionGraftPoint global_policy(
      "zoo.global-scheduler", [](std::span<const uint64_t>) -> uint64_t { return 0; },
      restricted, &zoo.txn, &zoo.host, &zoo.ns);

  Asm a("biased-scheduler");
  a.LoadImm(R0, 1).Halt();
  auto graft = zoo.Load(*a.Finish());
  Check(zoo.loader.InstallFunction("zoo.global-scheduler", graft) ==
            Status::kRestrictedPoint,
        "unprivileged user cannot replace a global policy");

  // Indirect call to an arbitrary function id at run time (checked call).
  const uint32_t internal = zoo.host.Register(
      "zoo.internal2", [](HostCallContext&) -> Result<uint64_t> { return 1ull; },
      false);
  Asm b("wild-caller");
  b.LoadImm(R1, internal).CallR(R1).Halt();
  auto wild = zoo.Load(*b.Finish());
  FunctionGraftPoint point(
      "zoo.wild-point", [](std::span<const uint64_t>) -> uint64_t { return 7; },
      FunctionGraftPoint::Config{}, &zoo.txn, &zoo.host, &zoo.ns);
  (void)point.Replace(wild);
  Check(point.Invoke({}) == 7 && !point.grafted(),
        "run-time indirect call to internal function aborted the graft");
}

// --- §2.4 Antisocial behavior ----------------------------------------------
void AntisocialBehavior(Zoo& zoo) {
  std::printf("\n§2.4 Antisocial behavior (Rule 8)\n");

  // Two address spaces; the antisocial one grafts an eviction policy that
  // names the other application's page. Verification confines the damage.
  MemorySystem mem(16, &zoo.txn, &zoo.host, &zoo.ns);
  VirtualAddressSpace* evil_vas = mem.CreateVas("mallory", 8);
  VirtualAddressSpace* victim_vas = mem.CreateVas("alice", 8);
  (void)mem.Touch(evil_vas->id(), 0);
  (void)mem.Touch(victim_vas->id(), 0);
  evil_vas->FindResident(0)->referenced = false;
  victim_vas->FindResident(0)->referenced = false;

  Page* alices_page = victim_vas->FindResident(0);
  Asm a("evict-alice");
  a.LoadImm(R0, static_cast<int64_t>(alices_page->id)).Halt();
  (void)evil_vas->eviction_point().Replace(zoo.Load(*a.Finish()));

  (void)mem.EvictOne();
  Check(alices_page->resident && victim_vas->resident_count() == 1,
        "graft naming another app's page was overruled (page survived)");
  Check(evil_vas->resident_count() == 0,
        "the antisocial application paid with its own page");
}

// --- §2.5 Covert denial of service ------------------------------------------
void CovertDenialOfService(Zoo& zoo) {
  std::printf("\n§2.5 Covert denial of service (Rule 9)\n");

  // An eviction graft that never returns would wedge the page daemon;
  // fuel exhaustion aborts it and the daemon evicts the original victim.
  MemorySystem mem(8, &zoo.txn, &zoo.host, &zoo.ns);
  VirtualAddressSpace* vas = mem.CreateVas("sneaky", 8);
  for (uint64_t i = 0; i < 4; ++i) {
    (void)mem.Touch(vas->id(), i);
    vas->FindResident(i)->referenced = false;
  }
  Asm a("never-return");
  auto top = a.NewLabel();
  a.Bind(top);
  a.Jmp(top);
  (void)vas->eviction_point().Replace(zoo.Load(*a.Finish()));

  const Status evicted = mem.EvictOne();
  Check(IsOk(evicted), "page daemon made forward progress despite hung graft");
  Check(vas->resident_count() == 3, "original victim evicted");
  Check(!vas->eviction_point().grafted(), "hung graft removed");
}

// --- §2.6 Forged toolchain (beyond the paper) -------------------------------
void ForgedToolchain(Zoo& zoo) {
  std::printf("\n§2.6 Forged toolchain (load-time verifier)\n");

  // The attacker controls the instrumenter and the signing key, so every
  // graft below is correctly signed and claims `instrumented = true`. The
  // paper's pipeline trusts that claim; our loader re-proves it.
  const uint32_t internal = zoo.host.Register(
      "zoo.root_shell",
      [](HostCallContext&) -> Result<uint64_t> { return 1ull; }, false);

  // (a) Manifest understates the call set: declares nothing, calls anything.
  Check(zoo.LoadForged({Instruction{Op::kCall, 0, 0, 0, internal},
                        Instruction{Op::kHalt, 0, 0, 0, 0}},
                       /*declared=*/{}) == Status::kIllegalCall,
        "undeclared direct call to internal function refused at load time");

  // (b) A raw store with no kSandboxAddr — the instrumenter "forgot" one.
  Check(zoo.LoadForged({Instruction{Op::kLoadImm, 1, 0, 0, 64},
                        Instruction{Op::kSt64, 0, 1, 2, 0},
                        Instruction{Op::kHalt, 0, 0, 0, 0}}) ==
            Status::kVerifyFailed,
        "unsandboxed store refused at load time");

  // (c) A surviving kCallR that skips the run-time callable probe.
  Check(zoo.LoadForged({Instruction{Op::kCallR, 0, 1, 0, 0},
                        Instruction{Op::kHalt, 0, 0, 0, 0}}) ==
            Status::kVerifyFailed,
        "unchecked indirect call refused at load time");

  // (d) Clobbering the sandbox mask register to widen every later access.
  Check(zoo.LoadForged({Instruction{Op::kLoadImm, kSandboxMaskReg, 0, 0, -1},
                        Instruction{Op::kSandboxAddr, kSandboxAddrReg, 1, 0, 0},
                        Instruction{Op::kSt64, 0, kSandboxAddrReg, 2, 0},
                        Instruction{Op::kHalt, 0, 0, 0, 0}}) ==
            Status::kVerifyFailed,
        "sandbox-mask clobber refused at load time");
}

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== the misbehavior zoo: surviving the five attack classes of §2 ==\n");
  Zoo zoo;
  IllegalDataAccess(zoo);
  ResourceHoarding(zoo);
  IncorrectInterfaces(zoo);
  AntisocialBehavior(zoo);
  CovertDenialOfService(zoo);
  ForgedToolchain(zoo);
  std::printf("\nAll attacks contained; the kernel made forward progress "
              "throughout (Table 1 rules 1-9).\n");
  return 0;
}
