// Transparent file encryption via a stream graft (paper §4.4).
//
// "A stream graft is used to transform a data stream as it passes through
//  the kernel. Examples of stream grafts are compression, logging,
//  mirroring, and encryption."
//
// An application grafts an xor-cipher onto its open file's stream point:
// writes are encrypted on the way into the kernel, reads decrypted on the
// way out. The on-disk blocks hold only ciphertext — shown by peeking at
// the raw block store — and another open of the same file *without* the
// graft sees ciphertext, not plaintext.

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/kernel/kernel.h"

using namespace vino;

namespace {

constexpr GraftIdentity kApp{2002, false};

// The cipher graft in text assembly. args: r0=in r1=out r2=count r3=dir.
// A keyed rolling xor (key ^ index) — still toy crypto, but enough to make
// the point that the transform is arbitrary downloaded code.
constexpr const char* kCipherSource = R"(
  ; rolling-xor stream cipher
  loadi r4, 0          ; index
  loadi r5, 0x5c       ; key byte
loop:
  bgeu r4, r2, done
  add r6, r0, r4
  ld8 r7, r6
  xor r7, r7, r5
  andi r8, r4, 0xff    ; mix the index in
  xor r7, r7, r8
  add r6, r1, r4
  st8 r6, r7
  addi r4, r4, 1
  jmp loop
done:
  loadi r0, 0
  halt
)";

std::string Hex(const uint8_t* data, size_t n) {
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x", data[i]);
    out += buf;
  }
  return out;
}

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== transparent file encryption via a stream graft (paper §4.4) ==\n\n");

  VinoKernel kernel;
  Result<FileId> file = kernel.fs().CreateFile("secrets.db", 16 * 4096);
  Result<OpenFile*> secure = kernel.fs().Open(*file);

  Result<std::shared_ptr<Graft>> cipher =
      kernel.LoadGraftFromSource(kCipherSource, "rolling-xor", kApp);
  if (!cipher.ok()) {
    std::fprintf(stderr, "cipher load failed\n");
    return 1;
  }
  kernel.loader().InstallFunction((*secure)->stream_point().name(), *cipher);
  std::printf("cipher graft installed at %s\n\n",
              (*secure)->stream_point().name().c_str());

  // --- Write through the graft. -----------------------------------------
  const std::string secret = "the merger closes friday at 9am";
  (void)(*secure)->WriteBytes(0, secret.size(),
                              reinterpret_cast<const uint8_t*>(secret.data()));
  std::printf("wrote plaintext:   \"%s\"\n", secret.c_str());

  // Raw block store holds ciphertext.
  Result<BlockId> block0 = kernel.fs().BlockFor(*file, 0);
  const uint8_t* raw = kernel.fs().BlockData(*block0);
  std::printf("on-disk bytes:     %s...\n", Hex(raw, 16).c_str());

  // --- Read back through the graft: decrypted. ---------------------------
  std::vector<uint8_t> readback(secret.size());
  (void)(*secure)->ReadBytes(0, readback.size(), readback.data());
  std::printf("read via graft:    \"%s\"\n",
              std::string(readback.begin(), readback.end()).c_str());

  // --- A second open WITHOUT the graft sees ciphertext. -------------------
  Result<OpenFile*> plain = kernel.fs().Open(*file);
  std::vector<uint8_t> snooped(secret.size());
  (void)(*plain)->ReadBytes(0, snooped.size(), snooped.data());
  std::printf("read w/o graft:    \"%.12s...\" (ciphertext)\n\n", snooped.data());

  std::printf("matches original:  %s\n",
              std::string(readback.begin(), readback.end()) == secret ? "yes"
                                                                      : "NO");
  std::printf("snooper got junk:  %s\n",
              std::string(snooped.begin(), snooped.end()) != secret ? "yes" : "NO");
  std::printf("\n[txn] begins=%llu commits=%llu aborts=%llu\n",
              static_cast<unsigned long long>(kernel.txn().stats().begins),
              static_cast<unsigned long long>(kernel.txn().stats().commits),
              static_cast<unsigned long long>(kernel.txn().stats().aborts));
  return 0;
}
