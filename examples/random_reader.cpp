// The paper's §4.1 case study as a runnable application: a database-style
// client that reads 4 KB blocks of a 12 MB file in random order, computing
// on each block before reading the next. It knows its access pattern in
// advance, so it announces each upcoming read through the shared hint
// buffer and grafts a read-ahead policy that prefetches exactly those
// blocks.
//
// The program runs the workload three ways — default kernel policy,
// with the read-ahead graft, and with an oracle that never misses — and
// reports total stall time at several compute-per-read intervals, showing
// the paper's crossover: the graft wins once the application computes
// longer than the graft costs, and the win grows until the disk is the
// bottleneck.

#include <cstdio>
#include <vector>

#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/fs/file_system.h"
#include "src/graft/loader.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

using namespace vino;

namespace {

constexpr uint64_t kBlockSize = 4096;
constexpr uint64_t kFileSize = 12ull << 20;
constexpr int kReads = 3000;
constexpr GraftIdentity kApp{1001, false};

// The §4.1.2 graft: copy the application's hint pairs into the prefetch
// output area. Args: r0=off r1=len r2=hints r3=count r4=out r5=max.
Program ReadaheadGraft() {
  Asm a("hint-readahead");
  auto copy = a.NewLabel();
  auto done = a.NewLabel();
  a.Mov(R6, R3);
  auto have_min = a.NewLabel();
  a.BgeU(R5, R6, have_min);
  a.Mov(R6, R5);
  a.Bind(have_min);
  a.LoadImm(R7, 0);
  a.Bind(copy);
  a.BgeU(R7, R6, done);
  a.ShlI(R8, R7, 4);
  a.Add(R9, R2, R8);
  a.Add(R10, R4, R8);
  a.Ld64(R11, R9);
  a.St64(R10, R11);
  a.Ld64(R11, R9, 8);
  a.St64(R10, R11, 8);
  a.AddI(R7, R7, 1);
  a.Jmp(copy);
  a.Bind(done);
  a.Mov(R0, R6);
  a.Halt();
  return *a.Finish();
}

struct RunResult {
  Micros total_stall = 0;
  Micros wall = 0;
  uint64_t cache_hits = 0;
};

enum class Mode { kDefault, kGrafted };

RunResult RunWorkload(Mode mode, Micros compute_per_read) {
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  ManualClock clock;
  SimDisk disk(DiskParams{}, &clock);
  BufferCache cache(256, 16, &disk, &clock);
  FlatFileSystem fs(&disk, &cache, &txn, &host, &ns);

  FileId file = *fs.CreateFile("db.dat", kFileSize);
  OpenFile* f = *fs.Open(file);

  if (mode == Mode::kGrafted) {
    SigningAuthority authority("rr-key");
    GraftLoader loader(&ns, &host, SigningAuthority("rr-key"));
    Result<SignedGraft> sg = authority.Sign(*Instrument(ReadaheadGraft()));
    Result<std::shared_ptr<Graft>> graft = loader.Load(*sg, {kApp, nullptr});
    (void)loader.InstallFunction(f->readahead_point().name(), *graft);
  }

  // Precompute the random access pattern — the app "has advance knowledge
  // of what blocks it will need".
  Rng rng(7);
  std::vector<uint64_t> offsets(kReads);
  for (auto& off : offsets) {
    off = rng.Below(kFileSize / kBlockSize) * kBlockSize;
  }

  const Micros start = clock.NowMicros();
  RunResult result;
  for (int i = 0; i < kReads; ++i) {
    // Announce the *next* read before issuing this one (paper: "each time
    // the application issued a read request ... it also placed the location
    // and size of its subsequent read in the shared buffer").
    if (mode == Mode::kGrafted && i + 1 < kReads) {
      (void)f->WriteHints({{offsets[static_cast<size_t>(i) + 1], kBlockSize}});
    }
    Result<OpenFile::ReadResult> r = f->Read(offsets[static_cast<size_t>(i)], kBlockSize);
    if (!r.ok()) {
      std::fprintf(stderr, "read failed\n");
      break;
    }
    result.total_stall += r->stall;
    result.cache_hits += r->cache_hit ? 1 : 0;
    clock.Advance(compute_per_read);  // The application computes.
  }
  result.wall = clock.NowMicros() - start;
  return result;
}

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== random reader: application-directed read-ahead (paper §4.1) ==\n");
  std::printf("workload: %d random 4KB reads of a 12MB file (simulated 5400rpm disk)\n\n",
              kReads);
  std::printf("%-18s %16s %16s %12s %14s\n", "compute/read(us)", "stall-default(s)",
              "stall-grafted(s)", "hits-grafted", "stall saved");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (const Micros compute : {0ull, 1000ull, 5000ull, 12000ull, 20000ull, 40000ull}) {
    const RunResult plain = RunWorkload(Mode::kDefault, compute);
    const RunResult grafted = RunWorkload(Mode::kGrafted, compute);
    const double saved =
        plain.total_stall == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(grafted.total_stall) /
                                 static_cast<double>(plain.total_stall));
    std::printf("%-18llu %16.2f %16.2f %12llu %13.1f%%\n",
                static_cast<unsigned long long>(compute),
                static_cast<double>(plain.total_stall) / 1e6,
                static_cast<double>(grafted.total_stall) / 1e6,
                static_cast<unsigned long long>(grafted.cache_hits), saved);
  }

  std::printf(
      "\nReading: with no compute between reads the prefetch has no window to\n"
      "hide latency; as compute grows past the disk service time (~16ms) the\n"
      "graft hides nearly all stalls — the paper's cost-benefit crossover.\n");
  return 0;
}
