// An in-kernel HTTP server as an event graft (paper §3.5, Figure 2).
//
// The handler graft is attached to the TCP port-80 connection event. For
// each connection it receives the request through net.recv, inspects the
// method byte, and replies through net.send — all inside a transaction. A
// second, buggy handler on port 8080 demonstrates the covert-denial-of-
// service defence: it hangs, gets aborted, its partial output is
// retracted, and it is removed from the event point while port 80 keeps
// serving.

#include <cstdio>
#include <string>

#include "src/base/log.h"
#include "src/graft/loader.h"
#include "src/net/net_stack.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"

using namespace vino;

namespace {

constexpr GraftIdentity kWebAdmin{500, false};

// The response the graft serves. Written into the graft's arena by the
// *application* before installation (static content), sent by the graft.
constexpr const char kResponse[] =
    "HTTP/1.0 200 OK\r\nServer: vino-graft\r\n\r\n<h1>hello from the kernel</h1>";

// Arena layout: [0..1024) request buffer, [1024..2048) response template.
// Handler: recv request; if it starts with 'G' (GET) send the response,
// else send nothing; close.
Program HttpHandler(const HostCallTable& host, bool hang) {
  const uint32_t recv = host.IdOf("net.recv").value();
  const uint32_t send = host.IdOf("net.send").value();
  const uint32_t close = host.IdOf("net.close").value();
  const auto arena_base = 65536;  // kernel region 4096 -> 64KiB-aligned arena.

  Asm a(hang ? "http-hang" : "http-ok");
  auto not_get = a.NewLabel();
  auto out = a.NewLabel();

  a.Mov(R6, R0);                    // connection id
  a.LoadImm(R7, arena_base);        // request buffer
  a.Mov(R1, R7);
  a.LoadImm(R2, 1024);
  a.Call(recv);                     // r0 = bytes received
  a.Mov(R8, R0);

  a.Ld8(R9, R7);                    // first byte of the request
  a.LoadImm(R10, 'G');
  a.Bne(R9, R10, not_get);

  if (hang) {
    // Send half a response, then never return (covert DoS, §2.5).
    a.Mov(R0, R6);
    a.LoadImm(R1, arena_base + 1024);
    a.LoadImm(R2, 16);
    a.Call(send);
    auto forever = a.NewLabel();
    a.Bind(forever);
    a.Jmp(forever);
  }

  a.Mov(R0, R6);
  a.LoadImm(R1, arena_base + 1024);
  a.LoadImm(R2, static_cast<int64_t>(sizeof(kResponse) - 1));
  a.Call(send);
  a.Jmp(out);

  a.Bind(not_get);                  // Non-GET: no body, just close.
  a.Bind(out);
  a.Mov(R0, R6);
  a.Call(close);
  a.LoadImm(R0, 1);
  a.Halt();
  return *a.Finish();
}

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== in-kernel HTTP server via event grafts (paper §3.5) ==\n\n");

  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  NetStack net(&txn, &host, &ns);
  SigningAuthority authority("http-key");
  GraftLoader loader(&ns, &host, SigningAuthority("http-key"));

  EventGraftPoint* port80 = net.ListenTcp(80);
  EventGraftPoint* port8080 = net.ListenTcp(8080);

  auto install = [&](uint16_t port, bool hang) -> std::shared_ptr<Graft> {
    Result<SignedGraft> sg = authority.Sign(*Instrument(HttpHandler(host, hang)));
    Result<std::shared_ptr<Graft>> graft = loader.Load(*sg, {kWebAdmin, nullptr});
    // The handler needs bandwidth to reply and a thread to run on.
    (*graft)->account().SetLimit(ResourceType::kNetBandwidth, 1 << 20);
    (*graft)->account().SetLimit(ResourceType::kThreads, 4);
    // Deposit the static response into the graft's arena.
    (void)(*graft)->image().Write((*graft)->image().arena_base() + 1024,
                                  kResponse, sizeof(kResponse) - 1);
    const std::string point =
        "net.tcp." + std::to_string(port) + ".connection";
    loader.InstallEvent(point, *graft, /*order=*/1);
    return *graft;
  };

  install(80, /*hang=*/false);
  install(8080, /*hang=*/true);

  // --- Traffic. ----------------------------------------------------------
  std::printf("GET / on port 80:\n");
  Result<ConnectionId> c1 = net.DeliverConnection(80, "GET / HTTP/1.0\r\n\r\n");
  std::printf("  response: %s\n\n",
              net.FindConnection(*c1)->tx.substr(0, 40).c_str());

  std::printf("POST / on port 80 (handler ignores non-GET):\n");
  Result<ConnectionId> c2 = net.DeliverConnection(80, "POST / HTTP/1.0\r\n\r\n");
  std::printf("  response bytes: %zu (connection closed: %s)\n\n",
              net.FindConnection(*c2)->tx.size(),
              net.FindConnection(*c2)->open ? "no" : "yes");

  std::printf("GET / on port 8080 (buggy handler hangs mid-reply):\n");
  Result<ConnectionId> c3 = net.DeliverConnection(8080, "GET / HTTP/1.0\r\n\r\n");
  std::printf("  response bytes after abort: %zu (partial send retracted)\n",
              net.FindConnection(*c3)->tx.size());
  std::printf("  port 8080 handlers remaining: %zu (removed after abort)\n\n",
              port8080->handler_count());

  std::printf("port 80 still serving:\n");
  Result<ConnectionId> c4 = net.DeliverConnection(80, "GET /again HTTP/1.0\r\n\r\n");
  std::printf("  response: %s\n\n",
              net.FindConnection(*c4)->tx.substr(0, 40).c_str());

  const EventGraftPoint::Stats s80 = port80->stats();
  std::printf("[port 80] events=%llu handler_runs=%llu aborts=%llu\n",
              static_cast<unsigned long long>(s80.events),
              static_cast<unsigned long long>(s80.handler_runs),
              static_cast<unsigned long long>(s80.handler_aborts));
  std::printf("[txn] begins=%llu commits=%llu aborts=%llu\n",
              static_cast<unsigned long long>(txn.stats().begins),
              static_cast<unsigned long long>(txn.stats().commits),
              static_cast<unsigned long long>(txn.stats().aborts));
  return 0;
}
