// Quickstart: the full life of a graft, end to end.
//
//  1. Author a graft in text assembly.
//  2. Run it through MiSFIT (instrumentation) and sign it.
//  3. Load it through the kernel's dynamic linker (signature + link checks).
//  4. Install it at a function graft point, replacing the default policy.
//  5. Invoke it — inside a transaction, sandboxed.
//  6. Watch a misbehaving version get aborted, undone, and evicted while
//     the kernel keeps answering with the default implementation.

#include <cstdio>
#include <span>

#include "src/base/log.h"
#include "src/graft/loader.h"
#include "src/sfi/assembler.h"
#include "src/sfi/misfit.h"
#include "src/txn/accessor.h"

using namespace vino;  // Example code; library code never does this.

namespace {

constexpr GraftIdentity kAlice{1001, /*privileged=*/false};

// Kernel state some accessor manipulates, to show undo in action.
uint64_t g_kernel_counter = 100;

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== vinolite quickstart ==\n\n");

  // --- The kernel side: host functions, namespace, loader. -------------
  TxnManager txn;
  HostCallTable host;
  GraftNamespace ns;
  SigningAuthority toolchain("vinolite-demo-key");  // MiSFIT's signing key.
  GraftLoader loader(&ns, &host, SigningAuthority("vinolite-demo-key"));

  // A graft-callable accessor: doubles the kernel counter, undo-logged.
  const uint32_t bump_id = host.Register(
      "demo.bump_counter",
      [](HostCallContext& ctx) -> Result<uint64_t> {
        TxnSet(&g_kernel_counter, g_kernel_counter + ctx.args[0]);
        return g_kernel_counter;
      },
      /*graft_callable=*/true);
  (void)bump_id;

  // A kernel function grafts are NOT allowed to call.
  host.Register(
      "demo.shutdown",
      [](HostCallContext&) -> Result<uint64_t> {
        std::printf("!! kernel would halt here\n");
        return 0ull;
      },
      /*graft_callable=*/false);

  // A graft point: some kernel object's "scale" policy. Default: identity.
  FunctionGraftPoint point(
      "demo.object.scale",
      [](std::span<const uint64_t> args) -> uint64_t {
        return args.empty() ? 0 : args[0];
      },
      FunctionGraftPoint::Config{}, &txn, &host, &ns);

  // --- The application side: write, protect, sign a graft. -------------
  const char* source = R"(
    ; scale(x) = 3*x + 1, and bump the kernel counter by x
    mov r6, r0               ; stash x
    call demo.bump_counter   ; kernel accessor (undo-logged)
    muli r0, r6, 3
    addi r0, r0, 1
    halt
  )";
  Result<Program> program = Assemble(source, "scale3x1", &host);
  if (!program.ok()) {
    return 1;
  }
  Result<Program> protected_program = Instrument(*program);
  Result<SignedGraft> signed_graft = toolchain.Sign(*protected_program);

  // --- Load and install. ------------------------------------------------
  Result<std::shared_ptr<Graft>> graft =
      loader.Load(*signed_graft, {kAlice, nullptr});
  std::printf("load signed graft:            %s\n",
              std::string(StatusName(graft.status())).c_str());
  Status installed = loader.InstallFunction("demo.object.scale", *graft);
  std::printf("install at demo.object.scale: %s\n",
              std::string(StatusName(installed)).c_str());

  // --- Invoke. -----------------------------------------------------------
  const uint64_t args[1] = {7};
  std::printf("\ninvoke(7) with graft  -> %llu   (expected 3*7+1 = 22)\n",
              static_cast<unsigned long long>(point.Invoke(args)));
  std::printf("kernel counter now       %llu   (accessor committed)\n",
              static_cast<unsigned long long>(g_kernel_counter));

  // --- Tampering is caught at load time. --------------------------------
  SignedGraft tampered = *signed_graft;
  tampered.program.code[2].imm = 1000;  // Patch the multiplier post-signing.
  std::printf("\nload tampered copy:           %s\n",
              std::string(StatusName(loader.Load(tampered, {kAlice, nullptr}).status()))
                  .c_str());

  // --- Calling restricted kernel functions is caught at link time. ------
  Result<Program> evil =
      Assemble("call demo.shutdown\nhalt\n", "evil", &host);
  Result<SignedGraft> evil_signed = toolchain.Sign(*Instrument(*evil));
  std::printf("load graft calling demo.shutdown: %s\n",
              std::string(StatusName(
                  loader.Load(*evil_signed, {kAlice, nullptr}).status()))
                  .c_str());

  // --- A misbehaving replacement is aborted and evicted. -----------------
  point.Remove();
  const char* hog_source = R"(
    ; bump the counter, then spin forever (resource hoarding)
    loadi r0, 5
    call demo.bump_counter
    forever:
      jmp forever
  )";
  Result<SignedGraft> hog_signed =
      toolchain.Sign(*Instrument(*Assemble(hog_source, "hog", &host)));
  Result<std::shared_ptr<Graft>> hog = loader.Load(*hog_signed, {kAlice, nullptr});
  (void)loader.InstallFunction("demo.object.scale", *hog);

  const uint64_t counter_before = g_kernel_counter;
  std::printf("\ninvoke(7) with hog    -> %llu   (fell back to default: 7)\n",
              static_cast<unsigned long long>(point.Invoke(args)));
  std::printf("kernel counter           %llu   (graft's bump was undone: %llu)\n",
              static_cast<unsigned long long>(g_kernel_counter),
              static_cast<unsigned long long>(counter_before));
  std::printf("graft still installed?   %s   (forcibly removed)\n",
              point.grafted() ? "yes" : "no");
  std::printf("transactions: %llu begun, %llu committed, %llu aborted\n",
              static_cast<unsigned long long>(txn.stats().begins),
              static_cast<unsigned long long>(txn.stats().commits),
              static_cast<unsigned long long>(txn.stats().aborts));
  return 0;
}
