// An in-kernel file service as an event graft — the paper's other §3.5
// motivating service ("an HTTP server, an NFS server, or a database
// server"), composing two substrates: the network stack delivers request
// packets; a graft-callable kernel function reads file content; the
// handler ships it back. Request protocol (NFS-in-spirit, one packet per
// call):
//
//   "R <block-index>"  ->  responds with the 64-byte record at that index
//
// The kernel exposes exactly one extra graft-callable function,
// fsrv.read_record, which performs the §3.3-mandated permission check (the
// file's owner must match the graft's installing uid) and copies the
// record into the caller's arena — never a raw kernel pointer (Rule 4:
// meta-data may flow freely, data only through checked channels).

#include <cstdio>
#include <cstring>
#include <string>

#include "src/base/log.h"
#include "src/kernel/kernel.h"

using namespace vino;

namespace {

constexpr GraftIdentity kFileOwner{3003, false};
constexpr GraftIdentity kStranger{4004, false};
constexpr uint64_t kRecordSize = 64;

// The handler graft: recv "R <idx>", parse idx, read_record(idx, arena),
// send the record back, close.
constexpr const char* kHandlerSource = R"(
  ; r6 = connection id
  mov r6, r0
  ; recv request into arena[0..64)
  loadi r7, 65536          ; arena base (4 KiB kernel region, 64 KiB arena)
  mov r1, r7
  loadi r2, 64
  call net.recv
  ; parse "R <digits>": accumulate decimal from byte 2 onward
  loadi r4, 0              ; value
  addi r5, r7, 2           ; cursor
parse:
  ld8 r8, r5
  loadi r9, 48             ; '0'
  bltu r8, r9, parsed
  loadi r9, 58             ; '9'+1
  bgeu r8, r9, parsed
  muli r4, r4, 10
  addi r8, r8, -48
  add r4, r4, r8
  addi r5, r5, 1
  jmp parse
parsed:
  ; read_record(idx=r4 -> r0, dest=arena+1024 -> r1)
  mov r0, r4
  addi r1, r7, 1024
  call fsrv.read_record
  ; send the 64-byte record
  mov r0, r6
  addi r1, r7, 1024
  loadi r2, 64
  call net.send
  mov r0, r6
  call net.close
  loadi r0, 1
  halt
)";

}  // namespace

int main() {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  std::printf("== in-kernel file service via event grafts (paper §3.5) ==\n\n");

  VinoKernel kernel;

  // A data file owned by kFileOwner, with recognizable record content.
  Result<FileId> file = kernel.fs().CreateFile("records.db", 256 * kRecordSize);
  Result<OpenFile*> writer = kernel.fs().Open(*file);
  for (uint64_t i = 0; i < 256; ++i) {
    char record[kRecordSize];
    std::snprintf(record, sizeof(record), "record-%03llu payload",
                  static_cast<unsigned long long>(i));
    (void)(*writer)->WriteBytes(i * kRecordSize, kRecordSize,
                                reinterpret_cast<const uint8_t*>(record));
  }

  // The kernel service function the graft is allowed to call.
  const FileId file_id = *file;
  OpenFile* reader = *kernel.fs().Open(file_id);
  kernel.host().Register(
      "fsrv.read_record",
      [&kernel, reader](HostCallContext& ctx) -> Result<uint64_t> {
        // §3.3 permission check: only the file owner's grafts may read.
        if (ctx.identity.uid != kFileOwner.uid && !ctx.identity.privileged) {
          return Status::kPermissionDenied;
        }
        const uint64_t index = ctx.args[0];
        const uint64_t dest = ctx.args[1];
        if (index >= 256 || ctx.image == nullptr ||
            !ctx.image->InArena(dest, kRecordSize)) {
          return Status::kInvalidArgs;
        }
        uint8_t record[kRecordSize];
        Result<OpenFile::ReadResult> r =
            reader->ReadBytes(index * kRecordSize, kRecordSize, record);
        if (!r.ok()) {
          return r.status();
        }
        const Status s = ctx.image->Write(dest, record, kRecordSize);
        if (!IsOk(s)) {
          return s;
        }
        return kRecordSize;
      },
      /*graft_callable=*/true);

  // Listen and install the handler.
  kernel.net().ListenUdp(2049);
  auto install = [&](GraftIdentity who) -> std::shared_ptr<Graft> {
    Result<std::shared_ptr<Graft>> graft =
        kernel.LoadGraftFromSource(kHandlerSource, "file-server", who);
    if (!graft.ok()) {
      std::fprintf(stderr, "handler load failed: %s\n",
                   std::string(StatusName(graft.status())).c_str());
      std::exit(1);
    }
    (*graft)->account().SetLimit(ResourceType::kNetBandwidth, 1 << 20);
    kernel.loader().InstallEvent("net.udp.2049.packet", *graft, 1);
    return *graft;
  };
  install(kFileOwner);

  // --- Serve some requests. ----------------------------------------------
  for (const char* request : {"R 0", "R 7", "R 255"}) {
    Result<ConnectionId> conn = kernel.net().DeliverPacket(2049, request);
    Connection* c = kernel.net().FindConnection(*conn);
    std::printf("%-8s -> \"%.20s...\" (%zu bytes)\n", request,
                c->tx.c_str(), c->tx.size());
  }

  // Out-of-range request: the kernel function refuses; the handler aborts
  // and is removed; the event stream itself keeps flowing.
  Result<ConnectionId> bad = kernel.net().DeliverPacket(2049, "R 9999");
  std::printf("%-8s -> %zu bytes (request refused, handler aborted)\n", "R 9999",
              kernel.net().FindConnection(*bad)->tx.size());
  EventGraftPoint* point = kernel.net().ListenUdp(2049);
  std::printf("handlers remaining after abort: %zu\n\n", point->handler_count());

  // A stranger installs the same handler code: fsrv.read_record sees the
  // stranger's uid and refuses — the graft aborts on its first request.
  install(kStranger);
  Result<ConnectionId> snoop = kernel.net().DeliverPacket(2049, "R 0");
  std::printf("stranger's handler got %zu bytes (permission denied, aborted)\n",
              kernel.net().FindConnection(*snoop)->tx.size());
  std::printf("handlers remaining: %zu\n", point->handler_count());

  std::printf("\n[txn] begins=%llu commits=%llu aborts=%llu\n",
              static_cast<unsigned long long>(kernel.txn().stats().begins),
              static_cast<unsigned long long>(kernel.txn().stats().commits),
              static_cast<unsigned long long>(kernel.txn().stats().aborts));
  return 0;
}
